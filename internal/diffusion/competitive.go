package diffusion

import (
	"context"
	"errors"
	"fmt"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// CompetitiveIC is a two-cascade Independent Cascade model in the style of
// Budak et al. (WWW 2011): when a node first becomes active at step t, it
// gets a single chance to activate each currently inactive out-neighbour,
// succeeding independently with probability P. Protector activations win
// simultaneous arrivals. It extends the library beyond the paper's two
// models, along the "other influence diffusion models" direction from the
// paper's conclusion.
type CompetitiveIC struct {
	// P is the per-edge activation probability in (0, 1].
	P float64
}

var _ ContextModel = CompetitiveIC{}

// Name implements Model.
func (m CompetitiveIC) Name() string { return fmt.Sprintf("IC(p=%g)", m.P) }

// Run implements Model.
func (m CompetitiveIC) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	return m.RunContext(context.Background(), g, rumors, protectors, src, opts)
}

// RunContext implements ContextModel: Run with per-hop cancellation checks.
func (m CompetitiveIC) RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if src == nil {
		return nil, errors.New("diffusion: CompetitiveIC requires a random source")
	}
	if m.P <= 0 || m.P > 1 {
		return nil, fmt.Errorf("diffusion: CompetitiveIC probability %v out of (0,1]", m.P)
	}
	status, err := seedState(g, rumors, protectors)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: status}

	var frontierP, frontierR []int32
	var infected, protected int32
	for u, st := range status {
		switch st {
		case Infected:
			infected++
			frontierR = append(frontierR, int32(u))
		case Protected:
			protected++
			frontierP = append(frontierP, int32(u))
		}
	}
	res.recordHop(opts, infected, protected)
	opts.emitSeeds(status)

	var nextP, nextR []int32
	maxHops := opts.maxHops()
	hop := 0
	for ; hop < maxHops && (len(frontierP) > 0 || len(frontierR) > 0); hop++ {
		if err := checkHop(ctx, m.Name(), hop); err != nil {
			return nil, err
		}
		nextP, nextR = nextP[:0], nextR[:0]
		for _, u := range frontierP {
			for _, v := range g.Out(u) {
				if status[v] == Inactive && src.Bool(m.P) {
					status[v] = Protected
					protected++
					nextP = append(nextP, v)
					opts.emit(hop+1, v, Protected, u)
				}
			}
		}
		for _, u := range frontierR {
			for _, v := range g.Out(u) {
				if status[v] == Inactive && src.Bool(m.P) {
					status[v] = Infected
					infected++
					nextR = append(nextR, v)
					opts.emit(hop+1, v, Infected, u)
				}
			}
		}
		frontierP, nextP = nextP, frontierP
		frontierR, nextR = nextR, frontierR
		res.recordHop(opts, infected, protected)
	}
	res.Hops = hop
	res.Infected = infected
	res.Protected = protected
	return res, nil
}

// CompetitiveLT is a two-cascade Linear Threshold model inspired by the
// competitive LT model of He et al. (SDM 2012): every node draws a uniform
// threshold; in-neighbour influence weights are 1/in-degree; a node becomes
// active once the combined weight of its active in-neighbours reaches its
// threshold, adopting the cascade that contributes the larger weight (ties
// to P, per the paper's priority rule).
type CompetitiveLT struct{}

var _ ContextModel = CompetitiveLT{}

// Name implements Model.
func (CompetitiveLT) Name() string { return "CLT" }

// Run implements Model.
func (m CompetitiveLT) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	return m.RunContext(context.Background(), g, rumors, protectors, src, opts)
}

// RunContext implements ContextModel: Run with per-hop cancellation checks.
func (CompetitiveLT) RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if src == nil {
		return nil, errors.New("diffusion: CompetitiveLT requires a random source")
	}
	status, err := seedState(g, rumors, protectors)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: status}

	n := g.NumNodes()
	thresholds := make([]float64, n)
	for i := range thresholds {
		thresholds[i] = src.Float64()
	}
	// Accumulated incoming weight per cascade.
	weightR := make([]float64, n)
	weightP := make([]float64, n)
	// stamp dedups threshold checks within a step.
	stamp := make([]int, n)

	var frontier []int32 // nodes activated in the previous step
	var infected, protected int32
	for u, st := range status {
		switch st {
		case Infected:
			infected++
			frontier = append(frontier, int32(u))
		case Protected:
			protected++
			frontier = append(frontier, int32(u))
		}
	}
	res.recordHop(opts, infected, protected)

	opts.emitSeeds(status)

	var next []int32
	maxHops := opts.maxHops()
	hop := 0
	for ; hop < maxHops && len(frontier) > 0; hop++ {
		if err := checkHop(ctx, "CLT", hop); err != nil {
			return nil, err
		}
		next = next[:0]
		// Push the frontier's influence onto inactive neighbours...
		for _, u := range frontier {
			w := status[u]
			for _, v := range g.Out(u) {
				if status[v] != Inactive {
					continue
				}
				share := 1 / float64(g.InDegree(v))
				if w == Protected {
					weightP[v] += share
				} else {
					weightR[v] += share
				}
			}
		}
		// ...then activate every inactive node whose threshold is now met.
		// Scanning only neighbours of the frontier keeps this linear.
		seenStamp := hop + 1
		for _, u := range frontier {
			for _, v := range g.Out(u) {
				if status[v] != Inactive || stamp[v] == seenStamp {
					continue
				}
				stamp[v] = seenStamp
				if weightR[v]+weightP[v] < thresholds[v] {
					continue
				}
				if weightP[v] >= weightR[v] {
					status[v] = Protected
					protected++
				} else {
					status[v] = Infected
					infected++
				}
				// The frontier node whose influence completed the
				// threshold is reported as the source.
				opts.emit(hop+1, v, status[v], u)
				next = append(next, v)
			}
		}
		frontier, next = next, frontier
		res.recordHop(opts, infected, protected)
	}
	res.Hops = hop
	res.Infected = infected
	res.Protected = protected
	return res, nil
}
