package diffusion

import (
	"context"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// DOAM is the Deterministic One-Activate-Many model: when a node first
// becomes infected or protected at step t, it activates *all* of its
// currently inactive out-neighbours at step t+1, and each node gets only
// that single chance to influence. Ties go to the protector cascade. The
// process is the paper's information-broadcast mechanism and is fully
// deterministic, so it ignores the random source.
type DOAM struct{}

var _ ContextModel = DOAM{}

// Name implements Model.
func (DOAM) Name() string { return "DOAM" }

// Run implements Model. src is unused and may be nil.
func (m DOAM) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	return m.RunContext(context.Background(), g, rumors, protectors, src, opts)
}

// RunContext implements ContextModel: Run with per-hop cancellation checks.
func (DOAM) RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, _ *rng.Source, opts Options) (*Result, error) {
	status, err := seedState(g, rumors, protectors)
	if err != nil {
		return nil, err
	}
	res := &Result{Status: status}

	var frontierP, frontierR []int32
	var infected, protected int32
	for u, st := range status {
		switch st {
		case Infected:
			infected++
			frontierR = append(frontierR, int32(u))
		case Protected:
			protected++
			frontierP = append(frontierP, int32(u))
		}
	}
	res.recordHop(opts, infected, protected)
	opts.emitSeeds(status)

	var nextP, nextR []int32
	maxHops := opts.maxHops()
	hop := 0
	for ; hop < maxHops && (len(frontierP) > 0 || len(frontierR) > 0); hop++ {
		if err := checkHop(ctx, "DOAM", hop); err != nil {
			return nil, err
		}
		nextP, nextR = nextP[:0], nextR[:0]
		// Protector frontier first: P claims every inactive neighbour it
		// touches, so simultaneous arrivals resolve in P's favour.
		for _, u := range frontierP {
			for _, v := range g.Out(u) {
				if status[v] == Inactive {
					status[v] = Protected
					protected++
					nextP = append(nextP, v)
					opts.emit(hop+1, v, Protected, u)
				}
			}
		}
		for _, u := range frontierR {
			for _, v := range g.Out(u) {
				if status[v] == Inactive {
					status[v] = Infected
					infected++
					nextR = append(nextR, v)
					opts.emit(hop+1, v, Infected, u)
				}
			}
		}
		frontierP, nextP = nextP, frontierP
		frontierR, nextR = nextR, frontierR
		res.recordHop(opts, infected, protected)
	}
	res.Hops = hop
	res.Infected = infected
	res.Protected = protected
	return res, nil
}
