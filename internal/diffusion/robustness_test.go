package diffusion

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// cancelingModel cancels the given cancel func on its CancelOn-th run and
// otherwise delegates, so cancellation lands deterministically mid-sweep.
type cancelingModel struct {
	Fault // reuse the atomic invocation counter
	inner Model
	stop  context.CancelFunc
	on    int64
}

func (m *cancelingModel) Name() string { return m.inner.Name() }

func (m *cancelingModel) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts Options) (*Result, error) {
	if m.calls.Add(1) == m.on {
		m.stop()
	}
	return m.inner.Run(g, rumors, protectors, src, opts)
}

// leakGuard snapshots the goroutine count; its check retries briefly so
// already-unblocked workers get to exit before the count is compared.
type leakGuard int

func newLeakGuard() leakGuard { return leakGuard(runtime.NumGoroutine()) }

func (lg leakGuard) check(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= int(lg) {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d before, %d after", int(lg), runtime.NumGoroutine())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMonteCarloRunContextPreCanceled(t *testing.T) {
	g := pathGraph(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	guard := newLeakGuard()
	_, err := MonteCarlo{Model: DOAM{}, Samples: 8, Workers: 4}.
		RunContext(ctx, g, []int32{0}, nil, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	guard.check(t)
}

func TestMonteCarloRunContextCancelMidRun(t *testing.T) {
	g, err := gen.ErdosRenyi(120, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	model := &cancelingModel{inner: OPOAO{}, stop: cancel, on: 5}
	guard := newLeakGuard()

	start := time.Now()
	_, err = MonteCarlo{Model: model, Samples: 10_000, Seed: 3, Workers: 4}.
		RunContext(ctx, g, []int32{0, 1}, []int32{2}, Options{MaxHops: 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Prompt return: nowhere near the time 10k samples would take.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if model.Calls() >= 10_000 {
		t.Fatalf("sweep ran to completion (%d calls) despite cancellation", model.Calls())
	}
	guard.check(t)
}

func TestMonteCarloRunContextDeadline(t *testing.T) {
	g := pathGraph(t, 6)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := MonteCarlo{Model: DOAM{}, Samples: 4}.RunContext(ctx, g, []int32{0}, nil, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestMonteCarloPanicContained(t *testing.T) {
	g := pathGraph(t, 5)
	for _, workers := range []int{1, 4} {
		fault := &Fault{FailOn: 3, Panic: true}
		guard := newLeakGuard()
		_, err := MonteCarlo{Model: fault.Model(OPOAO{}), Samples: 16, Seed: 2, Workers: workers}.
			Run(g, []int32{0}, nil, Options{})
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("workers=%d: err = %v, want ErrPanic", workers, err)
		}
		if !strings.Contains(err.Error(), "fault injection") {
			t.Fatalf("workers=%d: panic value lost: %v", workers, err)
		}
		guard.check(t)
	}
}

func TestMonteCarloInjectedErrorPropagates(t *testing.T) {
	g := pathGraph(t, 5)
	for _, workers := range []int{1, 4} {
		fault := &Fault{FailOn: 2}
		_, err := MonteCarlo{Model: fault.Model(OPOAO{}), Samples: 16, Seed: 2, Workers: workers}.
			Run(g, []int32{0}, nil, Options{})
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("workers=%d: err = %v, want ErrInjected", workers, err)
		}
		// The injected failure, not the fallout cancellation, must surface.
		if errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: cancellation fallout shadowed the cause: %v", workers, err)
		}
	}
}

func TestMonteCarloErrorCancelsSiblingWorkers(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	fault := &Fault{FailOn: 4}
	start := time.Now()
	_, err = MonteCarlo{Model: fault.Model(OPOAO{}), Samples: 50_000, Seed: 5, Workers: 4}.
		Run(g, []int32{0}, nil, Options{MaxHops: 20})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("sibling workers kept running for %v after the failure", elapsed)
	}
	if fault.Calls() >= 50_000 {
		t.Fatalf("sweep ran to completion (%d calls) despite the failure", fault.Calls())
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	rumors, protectors := []int32{0, 1}, []int32{2}
	for _, m := range []ContextModel{OPOAO{}, DOAM{}, CompetitiveIC{P: 0.3}, CompetitiveLT{}} {
		plain, err := m.Run(g, rumors, protectors, rng.New(7), Options{MaxHops: 15})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		withCtx, err := m.RunContext(context.Background(), g, rumors, protectors, rng.New(7), Options{MaxHops: 15})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if plain.Infected != withCtx.Infected || plain.Protected != withCtx.Protected {
			t.Fatalf("%s: Run and RunContext diverged: %d/%d vs %d/%d",
				m.Name(), plain.Infected, plain.Protected, withCtx.Infected, withCtx.Protected)
		}
	}
}

func TestModelRunContextCanceledMidHops(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 1200, 17)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []ContextModel{OPOAO{}, DOAM{}, CompetitiveIC{P: 0.5}, CompetitiveLT{}} {
		_, err := m.RunContext(ctx, g, []int32{0}, []int32{1}, rng.New(1), Options{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", m.Name(), err)
		}
	}
}

func TestFaultRealization(t *testing.T) {
	g := pathGraph(t, 5)
	fault := &Fault{FailOn: 2}
	real := fault.Realization(RunOPOAORealization)
	if _, err := real(g, []int32{0}, nil, 1, Options{}); err != nil {
		t.Fatalf("first invocation failed early: %v", err)
	}
	_, err := real(g, []int32{0}, nil, 1, Options{})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second invocation: err = %v, want ErrInjected", err)
	}
	if _, err := real(g, []int32{0}, nil, 1, Options{}); err != nil {
		t.Fatalf("fault fired more than once: %v", err)
	}
	fault.Reset()
	if _, err := real(g, []int32{0}, nil, 1, Options{}); err != nil {
		t.Fatalf("after Reset, first invocation failed: %v", err)
	}
	_, err = real(g, []int32{0}, nil, 1, Options{})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("after Reset, second invocation: err = %v, want ErrInjected", err)
	}
}

func TestFaultEvery(t *testing.T) {
	fault := &Fault{FailOn: 2, Every: 3}
	var fired []int64
	for i := int64(1); i <= 9; i++ {
		if err := fault.fire(); err != nil {
			fired = append(fired, i)
		}
	}
	want := []int64{2, 5, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
}
