package diffusion

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// ErrPanic is wrapped into the error returned by MonteCarlo when a model
// panics inside a sample worker: the panic is recovered and contained
// instead of tearing down the process. Test with errors.Is.
var ErrPanic = errors.New("diffusion: model panicked")

// MonteCarlo repeatedly runs a stochastic model and averages the results.
// Deterministic models work too (every sample is then identical).
type MonteCarlo struct {
	// Model is the diffusion model to sample.
	Model Model
	// Samples is the number of independent runs. Must be positive.
	Samples int
	// Seed derives one independent random stream per sample, so the whole
	// estimate is reproducible.
	Seed uint64
	// Workers runs samples concurrently on up to this many goroutines.
	// 0 or 1 means serial; negative means GOMAXPROCS. Every sample's
	// stream is derived from (Seed, sample index), so the aggregate is
	// identical regardless of worker count.
	Workers int
}

// Aggregate is the average of many simulation runs.
type Aggregate struct {
	// Samples is the number of runs averaged.
	Samples int
	// MeanInfected and MeanProtected are the mean final cascade sizes.
	MeanInfected  float64
	MeanProtected float64
	// MeanInfectedAtHop[h] is the mean cumulative infected count after hop
	// h; series from shorter runs are padded with their final value, so
	// every run contributes to every index. Only filled when
	// Options.RecordHops is set. MeanProtectedAtHop likewise.
	MeanInfectedAtHop  []float64
	MeanProtectedAtHop []float64
	// InfectedProb[v] estimates the probability that node v ends infected.
	InfectedProb []float64
}

// Run samples the model Samples times and averages. With Workers > 1 the
// samples run concurrently; the aggregate is bit-identical to the serial
// run because each sample's randomness depends only on (Seed, index).
// Options.Observer, when set, is invoked from multiple goroutines in that
// case and must be safe for concurrent use.
func (mc MonteCarlo) Run(g *graph.Graph, rumors, protectors []int32, opts Options) (*Aggregate, error) {
	return mc.RunContext(context.Background(), g, rumors, protectors, opts)
}

// RunContext is Run with cooperative cancellation and panic containment:
//
//   - Cancellation is checked between samples (and inside each sample's
//     step loop for the models of this package), so a canceled context
//     returns promptly with an error wrapping ctx.Err(). All worker
//     goroutines are joined before RunContext returns — no leaks.
//   - A panicking model is recovered into an error wrapping ErrPanic
//     (with the panic value and stack) instead of crashing the process.
//   - A failure in any worker cancels the remaining workers' samples, so
//     the first real error surfaces without waiting for the full sweep.
//
// Completed runs are bit-identical to Run regardless of worker count.
func (mc MonteCarlo) RunContext(ctx context.Context, g *graph.Graph, rumors, protectors []int32, opts Options) (*Aggregate, error) {
	if mc.Model == nil {
		return nil, fmt.Errorf("diffusion: MonteCarlo requires a model")
	}
	if mc.Samples <= 0 {
		return nil, fmt.Errorf("diffusion: MonteCarlo samples = %d must be positive", mc.Samples)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("diffusion: MonteCarlo: %w", err)
	}
	// Per-sample stream seeds. rng.New(seeds[i]) reproduces the stream the
	// serial implementation would have obtained from base.Split().
	seeds := make([]uint64, mc.Samples)
	base := rng.New(mc.Seed)
	for i := range seeds {
		seeds[i] = base.Uint64()
	}

	workers := mc.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > mc.Samples {
		workers = mc.Samples
	}

	// A failing worker cancels its siblings; they stop at their next
	// sample boundary instead of finishing the sweep.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	partials := make([]*Aggregate, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("diffusion: sample worker %d: %w: %v\n%s", w, ErrPanic, r, debug.Stack())
					cancel()
				}
			}()
			partials[w], errs[w] = mc.runChunk(ctx, g, rumors, protectors, opts, seeds, w, workers)
			if errs[w] != nil {
				cancel()
			}
		}()
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}

	agg := newAggregate(mc.Samples, g.NumNodes(), opts)
	for _, part := range partials {
		agg.MeanInfected += part.MeanInfected
		agg.MeanProtected += part.MeanProtected
		for i, v := range part.InfectedProb {
			agg.InfectedProb[i] += v
		}
		for i := range part.MeanInfectedAtHop {
			agg.MeanInfectedAtHop[i] += part.MeanInfectedAtHop[i]
			agg.MeanProtectedAtHop[i] += part.MeanProtectedAtHop[i]
		}
	}
	inv := 1 / float64(mc.Samples)
	agg.MeanInfected *= inv
	agg.MeanProtected *= inv
	for i := range agg.InfectedProb {
		agg.InfectedProb[i] *= inv
	}
	for i := range agg.MeanInfectedAtHop {
		agg.MeanInfectedAtHop[i] *= inv
		agg.MeanProtectedAtHop[i] *= inv
	}
	return agg, nil
}

// firstError picks the error to surface from a worker sweep: the first
// genuine failure by worker index, falling back to the first cancellation
// error. Cancellation errors rank last because a real failure cancels the
// sibling workers — their ctx errors are fallout, not the cause.
func firstError(errs []error) error {
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	return cancelErr
}

// newAggregate allocates an aggregate with the right series lengths.
func newAggregate(samples int, numNodes int32, opts Options) *Aggregate {
	agg := &Aggregate{
		Samples:      samples,
		InfectedProb: make([]float64, numNodes),
	}
	if opts.RecordHops {
		// Cumulative series have one entry per hop plus the seed entry.
		agg.MeanInfectedAtHop = make([]float64, opts.maxHops()+1)
		agg.MeanProtectedAtHop = make([]float64, opts.maxHops()+1)
	}
	return agg
}

// runChunk accumulates (without normalizing) every sample whose index is
// congruent to offset modulo stride, checking for cancellation at every
// sample boundary.
func (mc MonteCarlo) runChunk(ctx context.Context, g *graph.Graph, rumors, protectors []int32, opts Options, seeds []uint64, offset, stride int) (*Aggregate, error) {
	agg := newAggregate(0, g.NumNodes(), opts)
	for i := offset; i < len(seeds); i += stride {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("diffusion: sample %d: %w", i, err)
		}
		res, err := RunModelContext(ctx, mc.Model, g, rumors, protectors, rng.New(seeds[i]), opts)
		if err != nil {
			return nil, fmt.Errorf("diffusion: sample %d: %w", i, err)
		}
		agg.MeanInfected += float64(res.Infected)
		agg.MeanProtected += float64(res.Protected)
		for v, st := range res.Status {
			if st == Infected {
				agg.InfectedProb[v]++
			}
		}
		if opts.RecordHops {
			accumulatePadded(agg.MeanInfectedAtHop, res.InfectedAtHop)
			accumulatePadded(agg.MeanProtectedAtHop, res.ProtectedAtHop)
		}
	}
	return agg, nil
}

// accumulatePadded adds series into acc, extending a shorter series with
// its final value (a terminated cascade keeps its cumulative count).
func accumulatePadded(acc []float64, series []int32) {
	if len(series) == 0 {
		return
	}
	last := series[len(series)-1]
	for i := range acc {
		v := last
		if i < len(series) {
			v = series[i]
		}
		acc[i] += float64(v)
	}
}
