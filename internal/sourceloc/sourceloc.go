// Package sourceloc implements rumor-source estimation, the future-work
// direction the paper's conclusion singles out ("looking into the problem
// of locating rumor originators"). Given the set of infected nodes at some
// observation time, it ranks candidate originators by centrality within the
// infected subgraph: the Jordan center (minimum eccentricity) and the
// distance center (minimum total distance) estimators, both classical
// choices for SI-style spread.
package sourceloc

import (
	"fmt"
	"sort"

	"lcrb/internal/graph"
)

// Method selects the centrality estimator.
type Method int

const (
	// JordanCenter ranks nodes by the maximum distance to any other
	// infected node (smaller is better).
	JordanCenter Method = iota + 1
	// DistanceCenter ranks nodes by the sum of distances to all other
	// infected nodes (smaller is better).
	DistanceCenter
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case JordanCenter:
		return "jordan-center"
	case DistanceCenter:
		return "distance-center"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Candidate is a ranked source estimate.
type Candidate struct {
	// Node is the candidate originator.
	Node int32
	// Score is the centrality value (lower is more central). Unreachable
	// infected nodes contribute a penalty of the subgraph size.
	Score float64
}

// MaxInfected bounds the infected-set size Estimate accepts; centrality is
// all-pairs BFS over the infected subgraph, so the cost is quadratic.
const MaxInfected = 20000

// Estimate ranks the infected nodes as candidate rumor sources and returns
// the topK most central ones (all of them when topK <= 0). The infected
// slice must list the nodes observed infected; distances are measured in
// the subgraph they induce, following the standard assumption that the
// rumor spread only over infected individuals.
func Estimate(g *graph.Graph, infected []int32, method Method, topK int) ([]Candidate, error) {
	if g == nil {
		return nil, fmt.Errorf("sourceloc: nil graph")
	}
	if method != JordanCenter && method != DistanceCenter {
		return nil, fmt.Errorf("sourceloc: unknown method %d", int(method))
	}
	if len(infected) == 0 {
		return nil, fmt.Errorf("sourceloc: empty infected set")
	}
	if len(infected) > MaxInfected {
		return nil, fmt.Errorf("sourceloc: infected set of %d exceeds limit %d", len(infected), MaxInfected)
	}
	sub, err := g.Induce(infected)
	if err != nil {
		return nil, fmt.Errorf("sourceloc: %w", err)
	}
	n := sub.Graph.NumNodes()
	out := make([]Candidate, 0, n)
	for local := int32(0); local < n; local++ {
		// The source must reach every infected node, so distances run
		// forward from the candidate.
		dist := graph.Distances(sub.Graph, []int32{local}, graph.Forward)
		var score float64
		for _, d := range dist {
			switch {
			case d == graph.Unreachable:
				// Penalize unreachable infected nodes by the worst
				// possible distance so partially-explaining candidates
				// still rank sensibly.
				score = accumulate(method, score, float64(n))
			default:
				score = accumulate(method, score, float64(d))
			}
		}
		out = append(out, Candidate{Node: sub.ToParent[local], Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out, nil
}

// accumulate folds one distance into the score under the chosen method.
func accumulate(m Method, score, d float64) float64 {
	if m == JordanCenter {
		if d > score {
			return d
		}
		return score
	}
	return score + d
}

// Rank returns the 1-based rank of node in the candidates (0 when absent),
// counting ties as the same rank. It is the standard accuracy metric for
// source localization experiments.
func Rank(candidates []Candidate, node int32) int {
	rank, lastScore := 0, -1.0
	for i, c := range candidates {
		if i == 0 || c.Score != lastScore {
			rank = i + 1
			lastScore = c.Score
		}
		if c.Node == node {
			return rank
		}
	}
	return 0
}
