package sourceloc

import (
	"testing"

	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
)

func TestEstimateValidation(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Estimate(nil, []int32{0}, JordanCenter, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Estimate(g, nil, JordanCenter, 0); err == nil {
		t.Fatal("empty infected set accepted")
	}
	if _, err := Estimate(g, []int32{0}, Method(9), 0); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Estimate(g, []int32{99}, JordanCenter, 0); err == nil {
		t.Fatal("out-of-range infected node accepted")
	}
}

func TestEstimatePathCenter(t *testing.T) {
	// Bidirectional path 0 - 1 - 2 - 3 - 4: node 2 is both the Jordan and
	// the distance center.
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(i+1, i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	infected := []int32{0, 1, 2, 3, 4}
	for _, m := range []Method{JordanCenter, DistanceCenter} {
		cands, err := Estimate(g, infected, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cands[0].Node != 2 {
			t.Fatalf("%v: top candidate = %d, want 2", m, cands[0].Node)
		}
		if len(cands) != 5 {
			t.Fatalf("%v: got %d candidates", m, len(cands))
		}
	}
}

func TestEstimateTopK(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := int32(0); i < 3; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(i+1, i)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Estimate(g, []int32{0, 1, 2, 3}, JordanCenter, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("topK = 2 returned %d", len(cands))
	}
}

func TestEstimateDisconnectedPenalized(t *testing.T) {
	// Two components: {0,1} and {2}. Node 2 explains nothing and must rank
	// last under DistanceCenter.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Estimate(g, []int32{0, 1, 2}, DistanceCenter, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cands[len(cands)-1].Node != 2 {
		t.Fatalf("isolated node should rank last: %+v", cands)
	}
}

func TestRank(t *testing.T) {
	cands := []Candidate{
		{Node: 5, Score: 1},
		{Node: 7, Score: 1},
		{Node: 9, Score: 3},
	}
	if got := Rank(cands, 5); got != 1 {
		t.Fatalf("Rank(5) = %d", got)
	}
	if got := Rank(cands, 7); got != 1 {
		t.Fatalf("Rank(7) = %d, want 1 (tied)", got)
	}
	if got := Rank(cands, 9); got != 3 {
		t.Fatalf("Rank(9) = %d", got)
	}
	if got := Rank(cands, 42); got != 0 {
		t.Fatalf("Rank(absent) = %d", got)
	}
}

// TestSourceLocalizationOnBroadcast plants a DOAM rumor on a symmetric
// network and checks the true source ranks highly among the estimates.
func TestSourceLocalizationOnBroadcast(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{
		Nodes: 400, AvgDegree: 6, Symmetric: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	source := int32(10)
	res, err := diffusion.DOAM{}.Run(net.Graph, []int32{source}, nil, nil, diffusion.Options{MaxHops: 4})
	if err != nil {
		t.Fatal(err)
	}
	var infected []int32
	for v, st := range res.Status {
		if st == diffusion.Infected {
			infected = append(infected, int32(v))
		}
	}
	if len(infected) < 10 {
		t.Skip("cascade too small for a meaningful localization test")
	}
	cands, err := Estimate(net.Graph, infected, JordanCenter, 0)
	if err != nil {
		t.Fatal(err)
	}
	rank := Rank(cands, source)
	if rank == 0 {
		t.Fatal("true source missing from candidates")
	}
	// Broadcast from a single source is perfectly ball-shaped, so the true
	// source should be at or extremely near the Jordan center.
	if rank > len(infected)/4+1 {
		t.Fatalf("true source ranked %d of %d", rank, len(infected))
	}
}

func TestMethodString(t *testing.T) {
	if JordanCenter.String() != "jordan-center" || DistanceCenter.String() != "distance-center" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method produced empty string")
	}
}
