package heuristic

import (
	stdctx "context"
	"errors"
	"reflect"
	"testing"

	"lcrb/internal/diffusion"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
)

func TestGVSBlocksTheCut(t *testing.T) {
	// 0(R) -> 1 -> {2,3,4}: protecting node 1 saves everything downstream;
	// GVS must find it with a single seed.
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
	})
	seeds, err := GVS{}.Select(Context{Graph: g, Rumors: []int32{0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seeds, []int32{1}) {
		t.Fatalf("GVS selected %v, want [1]", seeds)
	}
}

func TestGVSStopsWhenNothingToSave(t *testing.T) {
	// Rumor with no out-edges: no candidate helps, selection is empty.
	g := mustGraph(t, 3, []graph.Edge{{U: 1, V: 2}})
	seeds, err := GVS{}.Select(Context{Graph: g, Rumors: []int32{0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 0 {
		t.Fatalf("GVS selected %v for an isolated rumor", seeds)
	}
}

func TestGVSRespectsBudget(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 300, AvgDegree: 6, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Graph: net.Graph, Rumors: []int32{0, 1}}
	seeds, err := GVS{Samples: 3, MaxCandidates: 30}.Select(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) > 2 {
		t.Fatalf("budget exceeded: %v", seeds)
	}
	for _, u := range seeds {
		if u == 0 || u == 1 {
			t.Fatal("rumor selected")
		}
	}
}

func TestGVSReducesInfections(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 400, AvgDegree: 8, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	rumors := []int32{0, 1}
	ctx := Context{Graph: net.Graph, Rumors: rumors}
	seeds, err := GVS{MaxCandidates: 40}.Select(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	open, err := diffusion.DOAM{}.Run(net.Graph, rumors, nil, nil, diffusion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := diffusion.DOAM{}.Run(net.Graph, rumors, seeds, nil, diffusion.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Infected >= open.Infected {
		t.Fatalf("GVS did not reduce infections: %d vs %d", blocked.Infected, open.Infected)
	}
}

func TestGVSValidation(t *testing.T) {
	if _, err := (GVS{}).Select(Context{}, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1}})
	seeds, err := GVS{}.Select(Context{Graph: g, Rumors: []int32{0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seeds != nil {
		t.Fatalf("k=0 selected %v", seeds)
	}
}

func TestGVSDeterministic(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 250, AvgDegree: 6, Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Graph: net.Graph, Rumors: []int32{5}}
	sel := GVS{Model: diffusion.OPOAO{}, Samples: 5, Seed: 3, MaxCandidates: 20}
	a, err := sel.Select(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sel.Select(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GVS not deterministic under a fixed seed")
	}
}

func TestGVSSelectContextCanceled(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
	})
	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel()
	_, err := GVS{}.SelectContext(ctx, Context{Graph: g, Rumors: []int32{0}}, 1)
	if !errors.Is(err, stdctx.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSelectContextCanceled(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel()
	_, err := SelectContext(ctx, MaxDegree{}, Context{Graph: g, Rumors: []int32{0}}, 2, nil)
	if !errors.Is(err, stdctx.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	seeds, err := Select(MaxDegree{}, Context{Graph: g, Rumors: []int32{0}}, 2, nil)
	if err != nil || len(seeds) == 0 {
		t.Fatalf("plain Select broken: %v, %v", seeds, err)
	}
}
