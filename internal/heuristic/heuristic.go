// Package heuristic implements the baseline protector-selection strategies
// the paper compares against: MaxDegree and Proximity, plus the Random
// baseline the paper mentions (and excludes for poor performance) and the
// NoBlocking reference line.
//
// A Selector produces a preference ranking of candidate protector seeds;
// experiments take prefixes of the ranking, either with a fixed budget
// (Figures 4-6) or growing the prefix until every bridge end is protected
// (Table I).
package heuristic

import (
	stdctx "context"
	"fmt"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// Context carries the problem data a selector may use.
type Context struct {
	// Graph is the social network.
	Graph *graph.Graph
	// Rumors is the rumor seed set S_R; rumor seeds are never selected.
	Rumors []int32
	// BridgeEnds is the bridge-end set B (some selectors ignore it).
	BridgeEnds []int32
}

// Selector ranks candidate protector seeds, best first.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Rank returns candidates in preference order. Rumor seeds are
	// excluded. src supplies randomness for stochastic selectors and may
	// be nil for deterministic ones.
	Rank(ctx Context, src *rng.Source) ([]int32, error)
}

// ContextRanker is implemented by selectors whose ranking is expensive
// enough to warrant cooperative cancellation. SelectContext prefers it over
// Rank when available.
type ContextRanker interface {
	Selector
	// RankContext is Rank with cancellation support.
	RankContext(cctx stdctx.Context, ctx Context, src *rng.Source) ([]int32, error)
}

// Select returns the top k candidates of sel's ranking (fewer if the
// ranking is shorter).
func Select(sel Selector, ctx Context, k int, src *rng.Source) ([]int32, error) {
	return SelectContext(stdctx.Background(), sel, ctx, k, src)
}

// SelectContext is Select with cooperative cancellation: the context is
// checked before ranking, and selectors implementing ContextRanker also
// honor it internally.
func SelectContext(cctx stdctx.Context, sel Selector, ctx Context, k int, src *rng.Source) ([]int32, error) {
	if sel == nil {
		return nil, fmt.Errorf("heuristic: select: nil selector")
	}
	if err := cctx.Err(); err != nil {
		return nil, fmt.Errorf("heuristic: %s: %w", sel.Name(), err)
	}
	var rank []int32
	var err error
	if cr, ok := sel.(ContextRanker); ok {
		rank, err = cr.RankContext(cctx, ctx, src)
	} else {
		rank, err = sel.Rank(ctx, src)
	}
	if err != nil {
		return nil, fmt.Errorf("heuristic: %s: %w", sel.Name(), err)
	}
	if k < 0 {
		k = 0
	}
	if k > len(rank) {
		k = len(rank)
	}
	return rank[:k], nil
}

// rumorSet builds a membership set of the rumor seeds.
func rumorSet(rumors []int32) map[int32]bool {
	set := make(map[int32]bool, len(rumors))
	for _, r := range rumors {
		set[r] = true
	}
	return set
}

// MaxDegree ranks nodes by decreasing out-degree — "simply chooses the
// nodes according to the decreasing order of node degree as the
// protectors".
type MaxDegree struct{}

var _ Selector = MaxDegree{}

// Name implements Selector.
func (MaxDegree) Name() string { return "MaxDegree" }

// Rank implements Selector.
func (MaxDegree) Rank(ctx Context, _ *rng.Source) ([]int32, error) {
	if ctx.Graph == nil {
		return nil, fmt.Errorf("heuristic: MaxDegree: nil graph")
	}
	isRumor := rumorSet(ctx.Rumors)
	ranked := ctx.Graph.TopByOutDegree(int(ctx.Graph.NumNodes()))
	out := make([]int32, 0, len(ranked))
	for _, u := range ranked {
		if !isRumor[u] {
			out = append(out, u)
		}
	}
	return out, nil
}

// Proximity ranks the direct out-neighbours of the rumor seeds, in random
// order — "the direct out-neighbors of rumors are chosen as the
// protectors", with the paper choosing among them randomly.
type Proximity struct{}

var _ Selector = Proximity{}

// Name implements Selector.
func (Proximity) Name() string { return "Proximity" }

// Rank implements Selector.
func (Proximity) Rank(ctx Context, src *rng.Source) ([]int32, error) {
	if ctx.Graph == nil {
		return nil, fmt.Errorf("heuristic: Proximity: nil graph")
	}
	if src == nil {
		return nil, fmt.Errorf("heuristic: Proximity: nil random source")
	}
	isRumor := rumorSet(ctx.Rumors)
	seen := make(map[int32]bool)
	var out []int32
	for _, r := range ctx.Rumors {
		for _, v := range ctx.Graph.Out(r) {
			if !isRumor[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	src.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// Random ranks all non-rumor nodes uniformly at random. The paper excludes
// it from the comparison for poor performance; it is provided for
// completeness.
type Random struct{}

var _ Selector = Random{}

// Name implements Selector.
func (Random) Name() string { return "Random" }

// Rank implements Selector.
func (Random) Rank(ctx Context, src *rng.Source) ([]int32, error) {
	if ctx.Graph == nil {
		return nil, fmt.Errorf("heuristic: Random: nil graph")
	}
	if src == nil {
		return nil, fmt.Errorf("heuristic: Random: nil random source")
	}
	isRumor := rumorSet(ctx.Rumors)
	out := make([]int32, 0, ctx.Graph.NumNodes())
	for u := int32(0); u < ctx.Graph.NumNodes(); u++ {
		if !isRumor[u] {
			out = append(out, u)
		}
	}
	src.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// NoBlocking selects nothing: the reference line showing unchecked rumor
// spread.
type NoBlocking struct{}

var _ Selector = NoBlocking{}

// Name implements Selector.
func (NoBlocking) Name() string { return "NoBlocking" }

// Rank implements Selector.
func (NoBlocking) Rank(Context, *rng.Source) ([]int32, error) { return nil, nil }
