package heuristic

import (
	"container/heap"
	"fmt"

	"lcrb/internal/rng"
)

// DegreeDiscount ranks nodes by the DegreeDiscount heuristic of Chen,
// Wang & Yang (KDD 2009): like MaxDegree, but each selection discounts the
// degrees of the chosen node's neighbours, so the ranking avoids stacking
// protectors inside one neighbourhood. The propagation-probability
// parameter follows the original paper's single-cascade IC derivation; it
// is used here as a smarter degree baseline for rumor blocking.
type DegreeDiscount struct {
	// P is the assumed propagation probability. 0 means 0.1.
	P float64
}

var _ Selector = DegreeDiscount{}

// Name implements Selector.
func (DegreeDiscount) Name() string { return "DegreeDiscount" }

// ddEntry is a priority-queue entry with a stale-score marker.
type ddEntry struct {
	node  int32
	score float64
}

type ddQueue []ddEntry

func (q ddQueue) Len() int { return len(q) }
func (q ddQueue) Less(i, j int) bool {
	if q[i].score != q[j].score {
		return q[i].score > q[j].score
	}
	return q[i].node < q[j].node
}
func (q ddQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *ddQueue) Push(x interface{}) { *q = append(*q, x.(ddEntry)) }
func (q *ddQueue) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// Rank implements Selector.
func (s DegreeDiscount) Rank(ctx Context, _ *rng.Source) ([]int32, error) {
	if ctx.Graph == nil {
		return nil, fmt.Errorf("heuristic: DegreeDiscount: nil graph")
	}
	p := s.P
	if p <= 0 || p > 1 {
		p = 0.1
	}
	g := ctx.Graph
	n := g.NumNodes()
	isRumor := rumorSet(ctx.Rumors)

	// t[v] counts already-selected in-neighbours of v; d[v] is the static
	// out-degree. ddv = d - 2t - (d - t)*t*p, per the original paper.
	selectedNeighbours := make([]int32, n)
	score := func(v int32) float64 {
		d := float64(g.OutDegree(v))
		t := float64(selectedNeighbours[v])
		return d - 2*t - (d-t)*t*p
	}

	pq := make(ddQueue, 0, n)
	for v := int32(0); v < n; v++ {
		if !isRumor[v] {
			pq = append(pq, ddEntry{node: v, score: score(v)})
		}
	}
	heap.Init(&pq)

	out := make([]int32, 0, pq.Len())
	selected := make([]bool, n)
	for pq.Len() > 0 {
		top := heap.Pop(&pq).(ddEntry)
		if selected[top.node] {
			continue
		}
		// Lazy re-evaluation: scores only decrease as neighbours are
		// selected, so a stale top gets refreshed and reinserted.
		if fresh := score(top.node); fresh < top.score {
			top.score = fresh
			heap.Push(&pq, top)
			continue
		}
		selected[top.node] = true
		out = append(out, top.node)
		for _, w := range g.Out(top.node) {
			if !selected[w] {
				selectedNeighbours[w]++
			}
		}
	}
	return out, nil
}
