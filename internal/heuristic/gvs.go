package heuristic

import (
	stdctx "context"
	"fmt"
	"sort"

	"lcrb/internal/diffusion"
	"lcrb/internal/graph"
)

// GVS is a Greedy Viral Stopper in the spirit of Nguyen et al.'s Node
// Protector heuristics (the related work the paper discusses): it greedily
// adds the protector whose inclusion maximizes the expected number of
// *saved* nodes network-wide — not just bridge ends — under a diffusion
// model. It is the strongest general-purpose baseline in this module and
// the natural contrast to the paper's bridge-end-targeted algorithms.
type GVS struct {
	// Model is the diffusion model used to evaluate candidates. Defaults
	// to DOAM.
	Model diffusion.Model
	// Samples is the Monte-Carlo sample count for stochastic models.
	// Defaults to 10. Deterministic models always use a single run.
	Samples int
	// MaxHops bounds each evaluation simulation. Defaults to 31.
	MaxHops int
	// Seed fixes the evaluation randomness (common random numbers across
	// candidates).
	Seed uint64
	// MaxCandidates caps the candidate pool, keeping the highest-degree
	// nodes of the rumor set's 2-hop out-neighbourhood. Defaults to 200.
	MaxCandidates int
}

// Select greedily picks k protector seeds.
func (s GVS) Select(ctx Context, k int) ([]int32, error) {
	return s.SelectContext(stdctx.Background(), ctx, k)
}

// SelectContext is Select with cooperative cancellation: the context is
// checked before every candidate evaluation and inside the Monte-Carlo
// sweeps. Unlike core.GreedyContext there is no partial-result contract —
// an interrupted baseline ranking is not worth reporting.
func (s GVS) SelectContext(cctx stdctx.Context, ctx Context, k int) ([]int32, error) {
	if ctx.Graph == nil {
		return nil, fmt.Errorf("heuristic: GVS: nil graph")
	}
	if k <= 0 {
		return nil, nil
	}
	model := s.Model
	if model == nil {
		model = diffusion.DOAM{}
	}
	samples := s.Samples
	if samples <= 0 {
		samples = 10
	}
	maxHops := s.MaxHops
	if maxHops <= 0 {
		maxHops = 31
	}
	candidates := s.candidates(ctx)
	if len(candidates) == 0 {
		return nil, nil
	}

	saved := func(protectors []int32) (float64, error) {
		agg, err := diffusion.MonteCarlo{Model: model, Samples: samples, Seed: s.Seed}.
			RunContext(cctx, ctx.Graph, ctx.Rumors, protectors, diffusion.Options{MaxHops: maxHops})
		if err != nil {
			return 0, err
		}
		return float64(ctx.Graph.NumNodes()) - agg.MeanInfected, nil
	}

	var selected []int32
	base, err := saved(nil)
	if err != nil {
		return nil, fmt.Errorf("heuristic: GVS: %w", err)
	}
	remaining := append([]int32(nil), candidates...)
	for len(selected) < k && len(remaining) > 0 {
		bestIdx := -1
		bestScore := base
		for i, u := range remaining {
			score, err := saved(append(selected, u))
			if err != nil {
				return nil, fmt.Errorf("heuristic: GVS: %w", err)
			}
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			break // no candidate saves anything further
		}
		selected = append(selected, remaining[bestIdx])
		base = bestScore
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return selected, nil
}

// candidates returns the rumor set's 2-hop out-neighbourhood (excluding
// rumors), largest out-degrees first, capped at MaxCandidates.
func (s GVS) candidates(ctx Context) []int32 {
	limit := s.MaxCandidates
	if limit <= 0 {
		limit = 200
	}
	isRumor := rumorSet(ctx.Rumors)
	dist := graph.DistancesBounded(ctx.Graph, ctx.Rumors, graph.Forward, 2)
	var pool []int32
	for v, d := range dist {
		if d != graph.Unreachable && !isRumor[int32(v)] {
			pool = append(pool, int32(v))
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		di, dj := ctx.Graph.OutDegree(pool[i]), ctx.Graph.OutDegree(pool[j])
		if di != dj {
			return di > dj
		}
		return pool[i] < pool[j]
	})
	if len(pool) > limit {
		pool = pool[:limit]
	}
	return pool
}
