package heuristic

import (
	"reflect"
	"sort"
	"testing"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func mustGraph(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func starPlusChain(t *testing.T) *graph.Graph {
	// Node 0 has out-degree 3 (hub); 4 -> 5 -> 6 chain; rumor will be 4.
	return mustGraph(t, 7, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 4, V: 5}, {U: 5, V: 6},
	})
}

func TestMaxDegreeRank(t *testing.T) {
	g := starPlusChain(t)
	ctx := Context{Graph: g, Rumors: []int32{4}}
	rank, err := MaxDegree{}.Rank(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rank[0] != 0 {
		t.Fatalf("top-ranked = %d, want hub 0", rank[0])
	}
	for _, u := range rank {
		if u == 4 {
			t.Fatal("rumor seed ranked as protector")
		}
	}
	if len(rank) != 6 {
		t.Fatalf("rank length = %d, want 6 (all non-rumor nodes)", len(rank))
	}
}

func TestMaxDegreeNilGraph(t *testing.T) {
	if _, err := (MaxDegree{}).Rank(Context{}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestProximityRanksRumorNeighbours(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 2}, {U: 3, V: 4},
	})
	ctx := Context{Graph: g, Rumors: []int32{0, 3}}
	rank, err := Proximity{}.Rank(ctx, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int32(nil), rank...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	// Out-neighbours of {0,3} are {1,2,4}, deduplicated.
	if !reflect.DeepEqual(got, []int32{1, 2, 4}) {
		t.Fatalf("proximity candidates = %v, want {1,2,4}", got)
	}
}

func TestProximityExcludesRumors(t *testing.T) {
	// Rumor 0 points at rumor 1.
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	ctx := Context{Graph: g, Rumors: []int32{0, 1}}
	rank, err := Proximity{}.Rank(ctx, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rank, []int32{2}) {
		t.Fatalf("rank = %v, want [2]", rank)
	}
}

func TestProximityDeterministicPerSeed(t *testing.T) {
	g := starPlusChain(t)
	ctx := Context{Graph: g, Rumors: []int32{0}}
	a, err := Proximity{}.Rank(ctx, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Proximity{}.Rank(ctx, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different proximity rankings")
	}
}

func TestProximityRequiresSource(t *testing.T) {
	g := starPlusChain(t)
	if _, err := (Proximity{}).Rank(Context{Graph: g}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestRandomCoversAllNonRumors(t *testing.T) {
	g := starPlusChain(t)
	ctx := Context{Graph: g, Rumors: []int32{0}}
	rank, err := Random{}.Rank(ctx, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 6 {
		t.Fatalf("rank length = %d, want 6", len(rank))
	}
	seen := make(map[int32]bool)
	for _, u := range rank {
		if u == 0 {
			t.Fatal("rumor ranked")
		}
		if seen[u] {
			t.Fatalf("node %d ranked twice", u)
		}
		seen[u] = true
	}
}

func TestRandomRequiresSource(t *testing.T) {
	g := starPlusChain(t)
	if _, err := (Random{}).Rank(Context{Graph: g}, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestNoBlocking(t *testing.T) {
	rank, err := NoBlocking{}.Rank(Context{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 0 {
		t.Fatalf("NoBlocking ranked %v", rank)
	}
}

func TestSelectPrefix(t *testing.T) {
	g := starPlusChain(t)
	ctx := Context{Graph: g, Rumors: []int32{4}}
	got, err := Select(MaxDegree{}, ctx, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 {
		t.Fatalf("Select = %v", got)
	}
	// Clamping.
	all, err := Select(MaxDegree{}, ctx, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("Select(99) returned %d", len(all))
	}
	none, err := Select(MaxDegree{}, ctx, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("Select(-1) returned %v", none)
	}
}

func TestSelectorNames(t *testing.T) {
	tests := []struct {
		sel  Selector
		want string
	}{
		{MaxDegree{}, "MaxDegree"},
		{Proximity{}, "Proximity"},
		{Random{}, "Random"},
		{NoBlocking{}, "NoBlocking"},
	}
	for _, tt := range tests {
		if got := tt.sel.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}
