package heuristic

import (
	"testing"

	"lcrb/internal/graph"
)

func TestPageRankSelectorRanksHubFirst(t *testing.T) {
	// Everyone points at node 0.
	g := mustGraph(t, 5, []graph.Edge{
		{U: 1, V: 0}, {U: 2, V: 0}, {U: 3, V: 0}, {U: 4, V: 0},
	})
	rank, err := PageRank{}.Rank(Context{Graph: g, Rumors: []int32{4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rank[0] != 0 {
		t.Fatalf("top = %d, want the sink hub 0", rank[0])
	}
	for _, u := range rank {
		if u == 4 {
			t.Fatal("rumor seed ranked")
		}
	}
	if len(rank) != 4 {
		t.Fatalf("rank length = %d, want 4", len(rank))
	}
}

func TestPageRankSelectorNilGraph(t *testing.T) {
	if _, err := (PageRank{}).Rank(Context{}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestPageRankSelectorName(t *testing.T) {
	if got := (PageRank{}).Name(); got != "PageRank" {
		t.Fatalf("Name = %q", got)
	}
}

func TestPageRankSelectorCustomDamping(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	rank, err := PageRank{Damping: 0.5}.Rank(Context{Graph: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 3 {
		t.Fatalf("rank = %v", rank)
	}
}
