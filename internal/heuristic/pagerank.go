package heuristic

import (
	"fmt"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// PageRank ranks nodes by decreasing PageRank score. It is an extension
// baseline beyond the paper's MaxDegree/Proximity pair: like MaxDegree it
// is oblivious to the rumor location, but it weighs global influence
// structure instead of raw degree.
type PageRank struct {
	// Damping is the PageRank damping factor; 0 means the 0.85 default.
	Damping float64
}

var _ Selector = PageRank{}

// Name implements Selector.
func (PageRank) Name() string { return "PageRank" }

// Rank implements Selector.
func (s PageRank) Rank(ctx Context, _ *rng.Source) ([]int32, error) {
	if ctx.Graph == nil {
		return nil, fmt.Errorf("heuristic: PageRank: nil graph")
	}
	isRumor := rumorSet(ctx.Rumors)
	ranked := graph.TopByPageRank(ctx.Graph, int(ctx.Graph.NumNodes()), graph.PageRankOptions{Damping: s.Damping})
	out := make([]int32, 0, len(ranked))
	for _, u := range ranked {
		if !isRumor[u] {
			out = append(out, u)
		}
	}
	return out, nil
}
