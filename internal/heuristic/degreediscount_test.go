package heuristic

import (
	"testing"

	"lcrb/internal/gen"
	"lcrb/internal/graph"
)

func TestDegreeDiscountTopIsMaxDegree(t *testing.T) {
	// The first pick (no discounts yet) must match MaxDegree's.
	g := starPlusChain(t)
	ctx := Context{Graph: g, Rumors: []int32{4}}
	dd, err := DegreeDiscount{}.Rank(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	md, err := MaxDegree{}.Rank(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dd[0] != md[0] {
		t.Fatalf("first picks differ: %d vs %d", dd[0], md[0])
	}
}

func TestDegreeDiscountSpreadsSelections(t *testing.T) {
	// Two disjoint stars with hubs 0 (degree 4) and 5 (degree 3), where
	// 0's leaves also interconnect; after taking hub 0, the discount must
	// push 0's leaves below the second hub.
	g := mustGraph(t, 9, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 1},
		{U: 5, V: 6}, {U: 5, V: 7}, {U: 5, V: 8},
	})
	rank, err := DegreeDiscount{}.Rank(Context{Graph: g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rank[0] != 0 {
		t.Fatalf("first pick = %d, want hub 0", rank[0])
	}
	if rank[1] != 5 {
		t.Fatalf("second pick = %d, want the other hub 5 (discounted leaves)", rank[1])
	}
}

func TestDegreeDiscountCoversAllNonRumors(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 200, AvgDegree: 6, Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	rumors := []int32{0, 1, 2}
	rank, err := DegreeDiscount{}.Rank(Context{Graph: net.Graph, Rumors: rumors}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != int(net.Graph.NumNodes())-len(rumors) {
		t.Fatalf("rank length = %d, want %d", len(rank), net.Graph.NumNodes()-3)
	}
	seen := make(map[int32]bool)
	for _, u := range rank {
		if u == 0 || u == 1 || u == 2 {
			t.Fatal("rumor ranked")
		}
		if seen[u] {
			t.Fatalf("node %d ranked twice", u)
		}
		seen[u] = true
	}
}

func TestDegreeDiscountValidation(t *testing.T) {
	if _, err := (DegreeDiscount{}).Rank(Context{}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestDegreeDiscountName(t *testing.T) {
	if got := (DegreeDiscount{}).Name(); got != "DegreeDiscount" {
		t.Fatalf("Name = %q", got)
	}
}
