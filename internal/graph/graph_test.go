package graph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"lcrb/internal/rng"
)

// buildMust builds a graph from edges and fails the test on error.
func buildMust(t *testing.T, n int32, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// randomGraph generates a random simple digraph for property tests.
func randomGraph(src *rng.Source, maxN int32) *Graph {
	n := src.Int32n(maxN) + 1
	m := src.Intn(int(n)*3 + 1)
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(src.Int32n(n), src.Int32n(n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := buildMust(t, 0, nil)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := buildMust(t, 5, nil)
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got %d nodes, %d edges; want 5, 0", g.NumNodes(), g.NumEdges())
	}
	for u := int32(0); u < 5; u++ {
		if len(g.Out(u)) != 0 || len(g.In(u)) != 0 {
			t.Fatalf("node %d has unexpected adjacency", u)
		}
	}
}

func TestBasicAdjacency(t *testing.T) {
	g := buildMust(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}})
	tests := []struct {
		node    int32
		wantOut []int32
		wantIn  []int32
	}{
		{0, []int32{1, 2}, []int32{3}},
		{1, []int32{2}, []int32{0}},
		{2, []int32{3}, []int32{0, 1}},
		{3, []int32{0}, []int32{2}},
	}
	for _, tt := range tests {
		if got := g.Out(tt.node); !reflect.DeepEqual(got, tt.wantOut) {
			t.Errorf("Out(%d) = %v, want %v", tt.node, got, tt.wantOut)
		}
		if got := g.In(tt.node); !reflect.DeepEqual(got, tt.wantIn) {
			t.Errorf("In(%d) = %v, want %v", tt.node, got, tt.wantIn)
		}
	}
}

func TestDuplicateEdgesCollapsed(t *testing.T) {
	g := buildMust(t, 2, []Edge{{0, 1}, {0, 1}, {0, 1}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestSelfLoopsDroppedByDefault(t *testing.T) {
	g := buildMust(t, 2, []Edge{{0, 0}, {0, 1}, {1, 1}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self-loops dropped)", g.NumEdges())
	}
}

func TestSelfLoopsKeptWhenAllowed(t *testing.T) {
	b := NewBuilder(2).AllowSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 0) {
		t.Fatal("self-loop (0,0) missing")
	}
}

func TestBuilderGrowsNodeSpace(t *testing.T) {
	b := NewBuilder(1)
	b.AddEdge(5, 9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", g.NumNodes())
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(3)
	b.Grow(7)
	b.Grow(2) // no shrink
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
}

func TestBuilderIgnoresNegativeEndpoints(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(-1, 2)
	b.AddEdge(0, -5)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
}

func TestBuilderDroppedAccumulatesAcrossBuilds(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(-1, 0)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	b.AddEdge(0, -1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (the counter follows the Builder's reuse contract)", b.Dropped())
	}
}

func TestBuilderDroppedZeroOnCleanInput(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if b.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", b.Dropped())
	}
}

// Regression: Build used to keep the first recorded instance of a duplicate
// edge and never count the collapse. The delta-stream semantic is last write
// wins, with every overwritten instance visible in Dropped diagnostics.
func TestBuilderDuplicateEdgesLastWriteWinsCounted(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1) // overwrites the first instance
	b.AddEdge(0, 1) // and again
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (two overwritten duplicate instances)", b.Dropped())
	}
}

// The overwrite count is a pure function of the recorded edges, so a reused
// Builder reports the same duplicates after a second Build instead of
// double-counting them; negative-endpoint drops still accumulate.
func TestBuilderDuplicateCountStableAcrossRebuilds(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(-1, 0)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2 (1 duplicate + 1 negative)", b.Dropped())
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d after rebuild, want 2 (overwrites must not double-count)", b.Dropped())
	}
}

func TestFromSortedAdjacency(t *testing.T) {
	rows := [][]int32{{1, 2}, {2}, {3}, {0}}
	g, err := FromSortedAdjacency(rows, false)
	if err != nil {
		t.Fatal(err)
	}
	want := buildMust(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}})
	if !reflect.DeepEqual(g, want) {
		t.Fatalf("FromSortedAdjacency = %+v, want the Builder-built graph %+v", g, want)
	}
	// The rows are copied: mutating them must not leak into the graph.
	rows[0][0] = 3
	if got := g.Out(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("Out(0) = %v after caller mutation, want {1, 2} (rows must be copied)", got)
	}
}

func TestFromSortedAdjacencyRejectsBadRows(t *testing.T) {
	cases := []struct {
		name string
		rows [][]int32
	}{
		{"out of range", [][]int32{{1}, {2}}},
		{"negative", [][]int32{{-1}, {}}},
		{"unsorted", [][]int32{{1, 0}, {}, {}}},
		{"duplicate", [][]int32{{1, 1}, {}}},
		{"self-loop", [][]int32{{0}}},
	}
	for _, tt := range cases {
		if _, err := FromSortedAdjacency(tt.rows, false); err == nil {
			t.Errorf("%s: FromSortedAdjacency accepted invalid rows %v", tt.name, tt.rows)
		}
	}
}

func TestFromSortedAdjacencyAllowsSelfLoops(t *testing.T) {
	g, err := FromSortedAdjacency([][]int32{{0, 1}, {}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 0) || !g.AllowsSelfLoops() {
		t.Fatal("self-loop not kept under allowSelfLoops")
	}
}

// Property: FromSortedAdjacency on a built graph's own rows reproduces the
// graph exactly — the round trip the dyngraph snapshot path relies on.
func TestFromSortedAdjacencyRoundTrip(t *testing.T) {
	src := rng.New(11)
	for i := 0; i < 50; i++ {
		g := randomGraph(src, 40)
		rows := make([][]int32, g.NumNodes())
		for u := int32(0); u < g.NumNodes(); u++ {
			rows[u] = g.Out(u)
		}
		got, err := FromSortedAdjacency(rows, g.AllowsSelfLoops())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("round trip drifted on graph %d", i)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := buildMust(t, 4, []Edge{{0, 1}, {0, 3}, {2, 1}})
	tests := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true},
		{0, 3, true},
		{2, 1, true},
		{1, 0, false},
		{0, 2, false},
		{3, 3, false},
	}
	for _, tt := range tests {
		if got := g.HasEdge(tt.u, tt.v); got != tt.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestReverse(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}})
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) {
		t.Fatal("Reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Fatal("Reverse kept original edge direction")
	}
	if r.NumEdges() != g.NumEdges() || r.NumNodes() != g.NumNodes() {
		t.Fatal("Reverse changed counts")
	}
}

func TestReverseTwiceIsIdentity(t *testing.T) {
	src := rng.New(1001)
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(src, 40)
		rr := g.Reverse().Reverse()
		if !reflect.DeepEqual(g.Edges(), rr.Edges()) {
			t.Fatal("double reverse changed the edge set")
		}
	}
}

func TestDegreeSumsEqualEdges(t *testing.T) {
	src := rng.New(1002)
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(src, 60)
		var outSum, inSum int64
		for u := int32(0); u < g.NumNodes(); u++ {
			outSum += int64(g.OutDegree(u))
			inSum += int64(g.InDegree(u))
		}
		if outSum != g.NumEdges() || inSum != g.NumEdges() {
			t.Fatalf("degree sums %d/%d != edges %d", outSum, inSum, g.NumEdges())
		}
	}
}

func TestInOutConsistency(t *testing.T) {
	src := rng.New(1003)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(src, 50)
		for u := int32(0); u < g.NumNodes(); u++ {
			for _, v := range g.Out(u) {
				found := false
				for _, w := range g.In(v) {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("edge (%d,%d) present in Out but missing from In", u, v)
				}
			}
		}
	}
}

func TestAdjacencySorted(t *testing.T) {
	src := rng.New(1004)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(src, 50)
		for u := int32(0); u < g.NumNodes(); u++ {
			if !sort.SliceIsSorted(g.Out(u), func(i, j int) bool { return g.Out(u)[i] < g.Out(u)[j] }) {
				t.Fatalf("Out(%d) not sorted: %v", u, g.Out(u))
			}
			if !sort.SliceIsSorted(g.In(u), func(i, j int) bool { return g.In(u)[i] < g.In(u)[j] }) {
				t.Fatalf("In(%d) not sorted: %v", u, g.In(u))
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}, {2, 1}})
	s := g.Symmetrize()
	want := []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(s.Edges(), want) {
		t.Fatalf("Symmetrize edges = %v, want %v", s.Edges(), want)
	}
}

// selfLoopGraph builds a permissive graph with a self-loop for the
// propagation tests.
func selfLoopGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3).AllowSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSymmetrizePreservesSelfLoops(t *testing.T) {
	g := selfLoopGraph(t)
	s := g.Symmetrize()
	if !s.HasEdge(0, 0) {
		t.Fatal("Symmetrize dropped the self-loop of an AllowSelfLoops graph")
	}
	if !s.AllowsSelfLoops() {
		t.Fatal("Symmetrize lost the AllowSelfLoops policy")
	}
	want := []Edge{{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(s.Edges(), want) {
		t.Fatalf("Symmetrize edges = %v, want %v", s.Edges(), want)
	}
}

func TestInducePreservesSelfLoops(t *testing.T) {
	g := selfLoopGraph(t)
	sub, err := g.Induce([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Graph.HasEdge(0, 0) {
		t.Fatal("Induce dropped the self-loop of an AllowSelfLoops graph")
	}
	if !sub.Graph.AllowsSelfLoops() {
		t.Fatal("Induce lost the AllowSelfLoops policy")
	}
}

func TestReversePreservesSelfLoopPolicy(t *testing.T) {
	g := selfLoopGraph(t)
	r := g.Reverse()
	if !r.AllowsSelfLoops() {
		t.Fatal("Reverse lost the AllowSelfLoops policy")
	}
	if !r.HasEdge(0, 0) {
		t.Fatal("Reverse lost the self-loop")
	}
	// The round trip through Symmetrize must also hold on the reversed
	// graph — the original bug site was the fresh Builder inside the
	// derivation helpers.
	if !r.Symmetrize().HasEdge(0, 0) {
		t.Fatal("Reverse+Symmetrize dropped the self-loop")
	}
}

func TestSymmetrizeIdempotent(t *testing.T) {
	src := rng.New(1005)
	for trial := 0; trial < 30; trial++ {
		s := randomGraph(src, 40).Symmetrize()
		ss := s.Symmetrize()
		if !reflect.DeepEqual(s.Edges(), ss.Edges()) {
			t.Fatal("Symmetrize is not idempotent")
		}
	}
}

func TestInduce(t *testing.T) {
	g := buildMust(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	sub, err := g.Induce([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.Graph.NumNodes())
	}
	// Edges inside {1,2,3}: (1,2) and (2,3).
	if sub.Graph.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2", sub.Graph.NumEdges())
	}
	for local, parent := range sub.ToParent {
		if sub.ToLocal[parent] != int32(local) {
			t.Fatalf("mapping mismatch for local %d / parent %d", local, parent)
		}
	}
	if sub.ToLocal[0] != -1 || sub.ToLocal[4] != -1 {
		t.Fatal("excluded nodes should map to -1")
	}
}

func TestInduceDuplicatesIgnored(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}})
	sub, err := g.Induce([]int32{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Graph.NumNodes() != 2 || sub.Graph.NumEdges() != 1 {
		t.Fatalf("got %d nodes %d edges, want 2/1", sub.Graph.NumNodes(), sub.Graph.NumEdges())
	}
}

func TestInduceOutOfRange(t *testing.T) {
	g := buildMust(t, 3, nil)
	if _, err := g.Induce([]int32{0, 7}); err == nil {
		t.Fatal("Induce accepted out-of-range node")
	}
}

func TestInducePreservesInternalEdges(t *testing.T) {
	src := rng.New(1006)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(src, 40)
		n := g.NumNodes()
		k := src.Int32n(n) + 1
		nodes := src.SampleInt32(n, k)
		sub, err := g.Induce(nodes)
		if err != nil {
			t.Fatal(err)
		}
		// Count parent edges with both endpoints selected.
		selected := make(map[int32]bool, len(nodes))
		for _, u := range nodes {
			selected[u] = true
		}
		var want int64
		for _, e := range g.Edges() {
			if selected[e.U] && selected[e.V] {
				want++
			}
		}
		if sub.Graph.NumEdges() != want {
			t.Fatalf("induced edges = %d, want %d", sub.Graph.NumEdges(), want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	src := rng.New(1007)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(src, 40)
		g2, err := FromEdges(g.NumNodes(), g.Edges())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatal("Edges/FromEdges round trip changed the graph")
		}
	}
}

func TestQuickBuilderNeverDuplicates(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(seed uint64) bool {
		g := randomGraph(rng.New(seed), 50)
		edges := g.Edges()
		for i := 1; i < len(edges); i++ {
			if edges[i] == edges[i-1] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
