package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// EdgeList is the result of parsing an external edge-list file. External
// node identifiers (which may be sparse, e.g. SNAP datasets) are remapped
// to dense internal identifiers.
type EdgeList struct {
	// Graph is the parsed graph over dense identifiers.
	Graph *Graph
	// Labels maps dense node identifiers back to the external identifiers
	// found in the input.
	Labels []int64
	// Dropped counts well-formed edge lines ignored because an endpoint
	// was negative (plus any edges the Builder itself refused). Malformed
	// lines are still hard errors; a negative identifier is a data quirk
	// real exports contain, so it is skipped and accounted for rather than
	// failing the whole file.
	Dropped int64
}

// ReadEdgeList parses a whitespace-separated directed edge list in the SNAP
// style: one "source target" pair per line, with '#' starting a comment.
// External identifiers may be arbitrary non-negative integers; they are
// remapped to dense identifiers in first-seen order. Lines with negative
// identifiers are dropped and counted in EdgeList.Dropped.
func ReadEdgeList(r io.Reader) (*EdgeList, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	idOf := make(map[int64]int32)
	var labels []int64
	intern := func(ext int64) int32 {
		if id, ok := idOf[ext]; ok {
			return id
		}
		id := int32(len(labels))
		idOf[ext] = id
		labels = append(labels, ext)
		return id
	}

	b := NewBuilder(0)
	dropped := int64(0)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			dropped++ // counted before interning: no label space for ids we refuse
			continue
		}
		b.AddEdge(intern(u), intern(v))
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &EdgeList{Graph: g, Labels: labels, Dropped: dropped + b.Dropped()}, nil
}

// ReadEdgeListFile is ReadEdgeList over the named file.
func ReadEdgeListFile(path string) (*EdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes g as a directed edge list with dense identifiers,
// one "u v" pair per line, preceded by a summary comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# directed edge list: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		for _, v := range g.Out(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes g to the named file, creating or truncating it.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteDOT writes g in Graphviz DOT format. Intended for small graphs and
// debugging; the output for large graphs is huge.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "digraph %q {\n", name); err != nil {
		return err
	}
	for u := int32(0); u < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 && g.InDegree(u) == 0 {
			if _, err := fmt.Fprintf(bw, "  %d;\n", u); err != nil {
				return err
			}
			continue
		}
		for _, v := range g.Out(u) {
			if _, err := fmt.Fprintf(bw, "  %d -> %d;\n", u, v); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(bw, "}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCommunities parses a community assignment file: each line holds a node
// identifier and a community identifier. Lines are "node community"; '#'
// starts a comment. The labels slice translates external node identifiers
// (as produced by ReadEdgeList) to dense ones; pass nil if the file already
// uses dense identifiers.
func ReadCommunities(r io.Reader, numNodes int32, labels []int64) ([]int32, error) {
	toDense := make(map[int64]int32, len(labels))
	for dense, ext := range labels {
		toDense[ext] = int32(dense)
	}
	assign := make([]int32, numNodes)
	for i := range assign {
		assign[i] = -1
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: communities line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		ext, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: communities line %d: bad node %q: %w", lineNo, fields[0], err)
		}
		comm, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: communities line %d: bad community %q: %w", lineNo, fields[1], err)
		}
		node := int32(ext)
		if labels != nil {
			dense, ok := toDense[ext]
			if !ok {
				return nil, fmt.Errorf("graph: communities line %d: unknown node %d", lineNo, ext)
			}
			node = dense
		}
		if node < 0 || node >= numNodes {
			return nil, fmt.Errorf("graph: communities line %d: node %d out of range", lineNo, node)
		}
		assign[node] = int32(comm)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: read communities: %w", err)
	}
	return assign, nil
}

// WriteCommunities writes a dense "node community" assignment file.
func WriteCommunities(w io.Writer, assign []int32) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# node community (%d nodes)\n", len(assign)); err != nil {
		return err
	}
	for node, comm := range assign {
		if _, err := fmt.Fprintf(bw, "%d %d\n", node, comm); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SortedCopy returns a sorted copy of nodes with duplicates removed.
// It is a convenience for presenting node sets deterministically.
func SortedCopy(nodes []int32) []int32 {
	out := make([]int32, len(nodes))
	copy(out, nodes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i > 0 && v == out[i-1] {
			continue
		}
		dedup = append(dedup, v)
	}
	return dedup
}
