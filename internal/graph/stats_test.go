package graph

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestDegreeStats(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 2: out degrees 2,1,0; in degrees 0,1,2.
	g := buildMust(t, 3, []Edge{{0, 1}, {0, 2}, {1, 2}})

	out := g.OutDegreeStats()
	if out.Min != 0 || out.Max != 2 || math.Abs(out.Mean-1.0) > 1e-9 || out.Median != 1 {
		t.Fatalf("OutDegreeStats = %+v", out)
	}
	in := g.InDegreeStats()
	if in.Min != 0 || in.Max != 2 || math.Abs(in.Mean-1.0) > 1e-9 {
		t.Fatalf("InDegreeStats = %+v", in)
	}
	total := g.TotalDegreeStats()
	if total.Min != 2 || total.Max != 2 || total.Mean != 2 {
		t.Fatalf("TotalDegreeStats = %+v", total)
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	g := buildMust(t, 0, nil)
	if got := g.OutDegreeStats(); got != (DegreeStats{}) {
		t.Fatalf("empty graph stats = %+v", got)
	}
}

func TestMedianEvenCount(t *testing.T) {
	// Out degrees: 3, 1, 0, 0 -> sorted 0,0,1,3 -> median 0.5.
	g := buildMust(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if got := g.OutDegreeStats().Median; got != 0.5 {
		t.Fatalf("median = %v, want 0.5", got)
	}
}

func TestAvgDegreeAndDensity(t *testing.T) {
	g := buildMust(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if got := g.AvgDegree(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("AvgDegree = %v, want 0.75", got)
	}
	if got := g.Density(); math.Abs(got-3.0/12.0) > 1e-9 {
		t.Fatalf("Density = %v, want 0.25", got)
	}
}

func TestDensityDegenerate(t *testing.T) {
	if got := buildMust(t, 0, nil).Density(); got != 0 {
		t.Fatalf("Density(empty) = %v", got)
	}
	if got := buildMust(t, 1, nil).Density(); got != 0 {
		t.Fatalf("Density(single) = %v", got)
	}
	if got := buildMust(t, 0, nil).AvgDegree(); got != 0 {
		t.Fatalf("AvgDegree(empty) = %v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}, {0, 2}, {1, 2}})
	// Total degrees: node 0: 2, node 1: 2, node 2: 2.
	got := g.DegreeHistogram()
	want := map[int32]int32{2: 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DegreeHistogram = %v, want %v", got, want)
	}
}

func TestTopByOutDegree(t *testing.T) {
	g := buildMust(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}, {2, 0}, {2, 1}, {1, 0}})
	// Out degrees: 0:3, 1:1, 2:2, 3:0.
	got := g.TopByOutDegree(3)
	want := []int32{0, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopByOutDegree = %v, want %v", got, want)
	}
}

func TestTopByOutDegreeTieBreak(t *testing.T) {
	g := buildMust(t, 3, []Edge{{2, 0}, {1, 0}})
	// Nodes 1 and 2 both have out-degree 1; ascending id breaks the tie.
	got := g.TopByOutDegree(2)
	want := []int32{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopByOutDegree = %v, want %v", got, want)
	}
}

func TestTopByOutDegreeClamping(t *testing.T) {
	g := buildMust(t, 2, []Edge{{0, 1}})
	if got := g.TopByOutDegree(99); len(got) != 2 {
		t.Fatalf("TopByOutDegree(99) len = %d", len(got))
	}
	if got := g.TopByOutDegree(-1); len(got) != 0 {
		t.Fatalf("TopByOutDegree(-1) len = %d", len(got))
	}
}

func TestGraphString(t *testing.T) {
	g := buildMust(t, 2, []Edge{{0, 1}})
	s := g.String()
	for _, want := range []string{"nodes: 2", "edges: 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
