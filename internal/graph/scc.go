package graph

import "sort"

// sortByScoreDesc sorts nodes by descending score, ties by ascending id.
func sortByScoreDesc(nodes []int32, score []float64) {
	sort.Slice(nodes, func(i, j int) bool {
		si, sj := score[nodes[i]], score[nodes[j]]
		if si != sj {
			return si > sj
		}
		return nodes[i] < nodes[j]
	})
}

// StronglyConnectedComponents computes the strongly connected components of
// g with Tarjan's algorithm (iterative, so deep graphs cannot overflow the
// goroutine stack). Components are numbered in reverse topological order of
// the condensation: if component a can reach component b, then
// comp[a] > comp[b].
func StronglyConnectedComponents(g *Graph) (comp []int32, count int32) {
	n := int(g.NumNodes())
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var (
		index   = make([]int32, n)
		lowlink = make([]int32, n)
		onStack = make([]bool, n)
		stack   []int32
		nextIdx int32 = 1 // 0 means unvisited
	)
	// Iterative Tarjan: frame keeps the node and its adjacency cursor.
	type frame struct {
		node int32
		next int
	}
	var frames []frame
	for start := 0; start < n; start++ {
		if index[start] != 0 {
			continue
		}
		frames = append(frames[:0], frame{node: int32(start)})
		index[start] = nextIdx
		lowlink[start] = nextIdx
		nextIdx++
		stack = append(stack, int32(start))
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.node
			adj := g.Out(u)
			if f.next < len(adj) {
				v := adj[f.next]
				f.next++
				if index[v] == 0 {
					index[v] = nextIdx
					lowlink[v] = nextIdx
					nextIdx++
					stack = append(stack, v)
					onStack[v] = true
					frames = append(frames, frame{node: v})
				} else if onStack[v] && index[v] < lowlink[u] {
					lowlink[u] = index[v]
				}
				continue
			}
			// u is fully explored.
			if lowlink[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == u {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if lowlink[u] < lowlink[parent] {
					lowlink[parent] = lowlink[u]
				}
			}
		}
	}
	return comp, count
}

// LargestComponent returns the members of the largest component under the
// given assignment (as produced by StronglyConnectedComponents or
// WeaklyConnectedComponents), sorted ascending.
func LargestComponent(comp []int32, count int32) []int32 {
	if count == 0 {
		return nil
	}
	sizes := make([]int32, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := int32(0)
	for c := int32(1); c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]int32, 0, sizes[best])
	for u, c := range comp {
		if c == best {
			out = append(out, int32(u))
		}
	}
	return out
}
