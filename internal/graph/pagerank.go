package graph

// PageRankOptions tunes the PageRank power iteration. The zero value is
// usable.
type PageRankOptions struct {
	// Damping is the damping factor d; defaults to 0.85.
	Damping float64
	// MaxIterations bounds the power iteration; defaults to 100.
	MaxIterations int
	// Tolerance stops the iteration once the L1 change of an iteration
	// falls below it; defaults to 1e-9.
	Tolerance float64
}

// PageRank computes the PageRank vector of g by power iteration, with
// dangling-node mass redistributed uniformly. The result sums to 1 (for a
// non-empty graph). It backs the PageRank protector-selection heuristic and
// the network statistics tool.
func PageRank(g *Graph, opts PageRankOptions) []float64 {
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 100
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-9
	}
	n := int(g.NumNodes())
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// Dangling mass: nodes with no out-edges spread uniformly.
		var dangling float64
		for u := 0; u < n; u++ {
			if g.OutDegree(int32(u)) == 0 {
				dangling += rank[u]
			}
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		for i := range next {
			next[i] = base
		}
		for u := 0; u < n; u++ {
			out := g.Out(int32(u))
			if len(out) == 0 {
				continue
			}
			share := opts.Damping * rank[u] / float64(len(out))
			for _, v := range out {
				next[v] += share
			}
		}
		var delta float64
		for i := range rank {
			d := next[i] - rank[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank, next = next, rank
		if delta < opts.Tolerance {
			break
		}
	}
	return rank
}

// TopByPageRank returns up to k node identifiers in descending PageRank
// order, ties broken by ascending identifier.
func TopByPageRank(g *Graph, k int, opts PageRankOptions) []int32 {
	ranks := PageRank(g, opts)
	nodes := make([]int32, len(ranks))
	for i := range nodes {
		nodes[i] = int32(i)
	}
	// Insertion of sort.Slice here keeps the dependency footprint of this
	// file identical to the rest of the package.
	sortByScoreDesc(nodes, ranks)
	if k < 0 {
		k = 0
	}
	if k > len(nodes) {
		k = len(nodes)
	}
	return nodes[:k]
}
