package graph

import (
	"fmt"
	"sort"
)

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min    int32
	Max    int32
	Mean   float64
	Median float64
}

// degreeStats computes summary statistics over the given degree function.
func degreeStats(n int32, degree func(NodeID) int32) DegreeStats {
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int32, n)
	var sum int64
	for u := int32(0); u < n; u++ {
		d := degree(u)
		degs[u] = d
		sum += int64(d)
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	median := float64(degs[n/2])
	if n%2 == 0 {
		median = (float64(degs[n/2-1]) + float64(degs[n/2])) / 2
	}
	return DegreeStats{
		Min:    degs[0],
		Max:    degs[n-1],
		Mean:   float64(sum) / float64(n),
		Median: median,
	}
}

// OutDegreeStats summarizes the out-degree distribution.
func (g *Graph) OutDegreeStats() DegreeStats {
	return degreeStats(g.numNodes, g.OutDegree)
}

// InDegreeStats summarizes the in-degree distribution.
func (g *Graph) InDegreeStats() DegreeStats {
	return degreeStats(g.numNodes, g.InDegree)
}

// TotalDegreeStats summarizes the total (in+out) degree distribution. The
// paper's "average node degree" figures (10.0 for Enron, 7.73 for Hep)
// count edges per node, i.e. directed edges divided by nodes.
func (g *Graph) TotalDegreeStats() DegreeStats {
	return degreeStats(g.numNodes, func(u NodeID) int32 {
		return g.OutDegree(u) + g.InDegree(u)
	})
}

// AvgDegree returns directed edges per node, the density measure the paper
// reports as "average node degree".
func (g *Graph) AvgDegree() float64 {
	if g.numNodes == 0 {
		return 0
	}
	return float64(g.numEdges) / float64(g.numNodes)
}

// Density returns |E| / (|V|·(|V|−1)), the fraction of possible directed
// edges that are present.
func (g *Graph) Density() float64 {
	n := int64(g.numNodes)
	if n <= 1 {
		return 0
	}
	return float64(g.numEdges) / float64(n*(n-1))
}

// DegreeHistogram returns a map from total degree to node count.
func (g *Graph) DegreeHistogram() map[int32]int32 {
	hist := make(map[int32]int32)
	for u := int32(0); u < g.numNodes; u++ {
		hist[g.OutDegree(u)+g.InDegree(u)]++
	}
	return hist
}

// TopByOutDegree returns up to k node identifiers in descending out-degree
// order, breaking ties by ascending node identifier. This is the ranking
// used by the MaxDegree heuristic.
func (g *Graph) TopByOutDegree(k int) []int32 {
	nodes := make([]int32, g.numNodes)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := g.OutDegree(nodes[i]), g.OutDegree(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	if k > len(nodes) {
		k = len(nodes)
	}
	if k < 0 {
		k = 0
	}
	return nodes[:k]
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes: %d, edges: %d, avg degree: %.2f}",
		g.numNodes, g.numEdges, g.AvgDegree())
}
