package graph

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"lcrb/internal/rng"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment line
0 1
1 2   # trailing comment
2 0
`
	el, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if el.Graph.NumNodes() != 3 || el.Graph.NumEdges() != 3 {
		t.Fatalf("got %d nodes %d edges, want 3/3", el.Graph.NumNodes(), el.Graph.NumEdges())
	}
	if !reflect.DeepEqual(el.Labels, []int64{0, 1, 2}) {
		t.Fatalf("labels = %v", el.Labels)
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	in := "1000 5\n5 999999\n"
	el, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if el.Graph.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", el.Graph.NumNodes())
	}
	// First-seen order: 1000 -> 0, 5 -> 1, 999999 -> 2.
	if !reflect.DeepEqual(el.Labels, []int64{1000, 5, 999999}) {
		t.Fatalf("labels = %v", el.Labels)
	}
	if !el.Graph.HasEdge(0, 1) || !el.Graph.HasEdge(1, 2) {
		t.Fatal("remapped edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"single field", "42\n"},
		{"bad source", "x 1\n"},
		{"bad target", "1 y\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("input %q parsed without error", tt.in)
			}
		})
	}
}

func TestReadEdgeListDropsNegativeIDs(t *testing.T) {
	// Negative identifiers are a data quirk, not a parse error: the lines
	// are skipped and counted, the rest of the file parses normally, and
	// no label space is wasted on the refused identifiers.
	in := "0 1\n-3 1\n2 -7\n1 2\n"
	el, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if el.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", el.Dropped)
	}
	if el.Graph.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", el.Graph.NumEdges())
	}
	// Dropped lines intern nothing: -3 and -7 never enter the label
	// space, and neither does an otherwise-valid endpoint on a dropped
	// line until a clean line mentions it.
	if !reflect.DeepEqual(el.Labels, []int64{0, 1, 2}) {
		t.Fatalf("labels = %v, want [0 1 2]", el.Labels)
	}
}

func TestReadEdgeListCleanInputDropsNothing(t *testing.T) {
	el, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if el.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", el.Dropped)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	src := rng.New(3001)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(src, 40)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		el, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Round trip loses isolated nodes (they never appear in the file),
		// so compare edge sets through the labels.
		want := g.Edges()
		var got []Edge
		for u := int32(0); u < el.Graph.NumNodes(); u++ {
			for _, v := range el.Graph.Out(u) {
				got = append(got, Edge{U: int32(el.Labels[u]), V: int32(el.Labels[v])})
			}
		}
		sortEdges(got)
		sortEdges(want)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip edges differ:\n got %v\nwant %v", got, want)
		}
	}
}

func sortEdges(edges []Edge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j-1], edges[j]
			if a.U < b.U || (a.U == b.U && a.V <= b.V) {
				break
			}
			edges[j-1], edges[j] = b, a
		}
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}})
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	el, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if el.Graph.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", el.Graph.NumEdges())
	}
}

func TestReadEdgeListFileMissing(t *testing.T) {
	if _, err := ReadEdgeListFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "test"`, "0 -> 1;", "2;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestCommunitiesRoundTrip(t *testing.T) {
	assign := []int32{0, 1, 1, 0, 2}
	var buf bytes.Buffer
	if err := WriteCommunities(&buf, assign); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCommunities(&buf, int32(len(assign)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, assign) {
		t.Fatalf("round trip = %v, want %v", got, assign)
	}
}

func TestReadCommunitiesWithLabels(t *testing.T) {
	in := "1000 0\n5 1\n"
	labels := []int64{1000, 5}
	got, err := ReadCommunities(strings.NewReader(in), 2, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("assignment = %v", got)
	}
}

func TestReadCommunitiesErrors(t *testing.T) {
	tests := []struct {
		name   string
		in     string
		labels []int64
	}{
		{"unknown node", "7 0\n", []int64{1, 2}},
		{"out of range", "9 0\n", nil},
		{"single field", "3\n", nil},
		{"bad community", "0 x\n", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCommunities(strings.NewReader(tt.in), 2, tt.labels); err == nil {
				t.Fatalf("input %q parsed without error", tt.in)
			}
		})
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int32{5, 1, 3, 1, 5, 2}
	got := SortedCopy(in)
	want := []int32{1, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedCopy = %v, want %v", got, want)
	}
	// Input must be untouched.
	if !reflect.DeepEqual(in, []int32{5, 1, 3, 1, 5, 2}) {
		t.Fatal("SortedCopy mutated its input")
	}
}

func TestSortedCopyEmpty(t *testing.T) {
	if got := SortedCopy(nil); len(got) != 0 {
		t.Fatalf("SortedCopy(nil) = %v", got)
	}
}
