package graph

import (
	"math"
	"testing"
)

func TestClusteringCoefficientTriangle(t *testing.T) {
	// A directed 3-cycle is a fully connected undirected triangle.
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if got := ClusteringCoefficient(g); math.Abs(got-1) > 1e-9 {
		t.Fatalf("triangle clustering = %v, want 1", got)
	}
}

func TestClusteringCoefficientStar(t *testing.T) {
	// Star: no links between leaves -> hub coefficient 0, leaves skipped.
	g := buildMust(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if got := ClusteringCoefficient(g); got != 0 {
		t.Fatalf("star clustering = %v, want 0", got)
	}
}

func TestClusteringCoefficientHalf(t *testing.T) {
	// Path 1 - 0 - 2 plus the edge 1 - 2 closed: triangle again, but add a
	// fourth pendant node to mix coefficients: node 0 has neighbours
	// {1,2,3}; links among them: (1,2) only -> 1/3. Nodes 1 and 2 have
	// neighbours {0,2}/{0,1} fully linked -> 1 each. Node 3 skipped.
	g := buildMust(t, 4, []Edge{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	want := (1.0/3 + 1 + 1) / 3
	if got := ClusteringCoefficient(g); math.Abs(got-want) > 1e-9 {
		t.Fatalf("clustering = %v, want %v", got, want)
	}
}

func TestClusteringCoefficientEmpty(t *testing.T) {
	if got := ClusteringCoefficient(buildMust(t, 3, nil)); got != 0 {
		t.Fatalf("edgeless clustering = %v", got)
	}
	if got := ClusteringCoefficient(buildMust(t, 0, nil)); got != 0 {
		t.Fatalf("empty clustering = %v", got)
	}
}

func TestEstimateDiameterPath(t *testing.T) {
	g := chain(t, 6) // 0 -> 1 -> ... -> 5
	diam, mean := EstimateDiameter(g, 0, 1)
	if diam != 5 {
		t.Fatalf("diameter = %d, want 5", diam)
	}
	// Exact mean over all reachable ordered pairs of a 6-path:
	// sum_{d=1..5} (6-d)*d = 35 over 15 pairs = 7/3.
	if math.Abs(mean-35.0/15.0) > 1e-9 {
		t.Fatalf("mean path = %v, want %v", mean, 35.0/15.0)
	}
}

func TestEstimateDiameterSampled(t *testing.T) {
	g := chain(t, 50)
	diam, _ := EstimateDiameter(g, 10, 3)
	if diam < 25 || diam > 49 {
		t.Fatalf("sampled diameter = %d, want within (25,49]", diam)
	}
}

func TestEstimateDiameterEmpty(t *testing.T) {
	diam, mean := EstimateDiameter(buildMust(t, 0, nil), 5, 1)
	if diam != 0 || mean != 0 {
		t.Fatalf("empty graph: %d, %v", diam, mean)
	}
}
