// Package graph provides the directed-graph substrate used by the rumor
// blocking library: a compact CSR (compressed sparse row) representation
// with both out- and in-adjacency, an incremental Builder, BFS primitives,
// edge-list I/O, and structural statistics.
//
// Nodes are dense int32 identifiers in [0, N). Graphs are immutable once
// built, which makes them safe for concurrent readers (every simulator and
// solver in this module shares one *Graph across goroutines).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node. Node identifiers are dense: a graph with N nodes
// uses exactly the identifiers 0..N-1.
type NodeID = int32

// Graph is an immutable directed graph in CSR form. Both adjacency
// directions are stored: Out(u) lists activation targets of u, In(v) lists
// potential influencers of v (needed by backward search trees).
type Graph struct {
	numNodes int32
	numEdges int64

	outOff []int64 // len numNodes+1
	outAdj []int32 // len numEdges, sorted within each node's range
	inOff  []int64
	inAdj  []int32

	// allowSelfLoops records the Builder policy the graph was built under,
	// so derived graphs (Reverse, Symmetrize, Induce) keep self-loops a
	// permissive graph legitimately contains instead of silently dropping
	// them through a default Builder.
	allowSelfLoops bool
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int32 { return g.numNodes }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// Out returns the out-neighbours of u in ascending order. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Out(u NodeID) []int32 {
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// In returns the in-neighbours of v in ascending order. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) In(v NodeID) []int32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns the number of out-neighbours of u.
func (g *Graph) OutDegree(u NodeID) int32 {
	return int32(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the number of in-neighbours of v.
func (g *Graph) InDegree(v NodeID) int32 {
	return int32(g.inOff[v+1] - g.inOff[v])
}

// AllowsSelfLoops reports whether the graph was built under the
// AllowSelfLoops policy; derived graphs inherit it.
func (g *Graph) AllowsSelfLoops() bool { return g.allowSelfLoops }

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.Out(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		numNodes:       g.numNodes,
		numEdges:       g.numEdges,
		outOff:         g.inOff,
		outAdj:         g.inAdj,
		inOff:          g.outOff,
		inAdj:          g.outAdj,
		allowSelfLoops: g.allowSelfLoops,
	}
}

// Edge is a directed edge from U to V.
type Edge struct {
	U, V NodeID
}

// Edges returns all edges in (U, V) ascending order. The slice is freshly
// allocated and owned by the caller.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.numEdges)
	for u := int32(0); u < g.numNodes; u++ {
		for _, v := range g.Out(u) {
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return edges
}

// Symmetrize returns a graph that contains both (u,v) and (v,u) for every
// edge of g, with duplicates removed. The paper applies this to undirected
// collaboration networks ("we represent each undirected edge (i,j) by two
// directed edges (i,j) and (j,i)").
func (g *Graph) Symmetrize() *Graph {
	b := NewBuilder(g.numNodes)
	if g.allowSelfLoops {
		b.AllowSelfLoops()
	}
	for u := int32(0); u < g.numNodes; u++ {
		for _, v := range g.Out(u) {
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}
	}
	sym, err := b.Build()
	if err != nil {
		// Unreachable: all endpoints come from a valid graph.
		panic(fmt.Sprintf("graph: symmetrize: %v", err))
	}
	return sym
}

// Subgraph is an induced subgraph together with the node-identifier mapping
// back to the parent graph.
type Subgraph struct {
	// Graph is the induced subgraph over dense local identifiers.
	Graph *Graph
	// ToParent maps local node identifiers to parent identifiers.
	ToParent []int32
	// ToLocal maps parent identifiers to local identifiers; nodes outside
	// the subgraph map to -1.
	ToLocal []int32
}

// Induce returns the subgraph induced by nodes (duplicates ignored).
func (g *Graph) Induce(nodes []int32) (*Subgraph, error) {
	toLocal := make([]int32, g.numNodes)
	for i := range toLocal {
		toLocal[i] = -1
	}
	var toParent []int32
	for _, u := range nodes {
		if u < 0 || u >= g.numNodes {
			return nil, fmt.Errorf("graph: induce: node %d out of range [0,%d)", u, g.numNodes)
		}
		if toLocal[u] < 0 {
			toLocal[u] = int32(len(toParent))
			toParent = append(toParent, u)
		}
	}
	b := NewBuilder(int32(len(toParent)))
	if g.allowSelfLoops {
		b.AllowSelfLoops()
	}
	for local, parent := range toParent {
		for _, v := range g.Out(parent) {
			if lv := toLocal[v]; lv >= 0 {
				b.AddEdge(int32(local), lv)
			}
		}
	}
	sg, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Subgraph{Graph: sg, ToParent: toParent, ToLocal: toLocal}, nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are collapsed with last-write-wins semantics: the most recently
// recorded instance of an edge is the one kept, matching the delta-stream
// convention of internal/dyngraph where a re-added edge carries the latest
// state. Self-loops are rejected by default because no diffusion model in
// this module can use them; call AllowSelfLoops to keep them.
type Builder struct {
	numNodes       int32
	edges          []Edge
	allowSelfLoops bool
	// dropped counts edges AddEdge refused (negative endpoints); see
	// Dropped.
	dropped int64
	// overwritten counts duplicate-edge collapses observed by the latest
	// Build — earlier instances overwritten by a later AddEdge of the same
	// (u, v). Recomputed per Build (a pure function of the recorded edges),
	// so reusing the Builder never double-counts.
	overwritten int64
}

// NewBuilder returns a Builder for a graph with numNodes nodes.
func NewBuilder(numNodes int32) *Builder {
	if numNodes < 0 {
		numNodes = 0
	}
	return &Builder{numNodes: numNodes}
}

// AllowSelfLoops makes Build keep self-loop edges instead of dropping them.
func (b *Builder) AllowSelfLoops() *Builder {
	b.allowSelfLoops = true
	return b
}

// Grow ensures the node-identifier space covers at least numNodes nodes.
func (b *Builder) Grow(numNodes int32) {
	if numNodes > b.numNodes {
		b.numNodes = numNodes
	}
}

// AddEdge records the directed edge (u, v). Endpoints extend the node space
// if needed, so callers may build graphs without knowing N up front.
// Edges with negative identifiers are ignored and counted; Dropped reports
// the running total.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || v < 0 {
		b.dropped++
		return
	}
	if u >= b.numNodes {
		b.numNodes = u + 1
	}
	if v >= b.numNodes {
		b.numNodes = v + 1
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
}

// NumPendingEdges returns the number of edges recorded so far, before
// deduplication.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Dropped returns the number of recorded edges that did not survive into
// the built graph as distinct edges: edges AddEdge ignored because an
// endpoint was negative, plus duplicate instances overwritten by a later
// AddEdge of the same (u, v) in the latest Build (last-write-wins). The
// negative-endpoint count accumulates across Build calls, matching the
// Builder's reuse contract; the overwrite count reflects the latest Build.
func (b *Builder) Dropped() int64 { return b.dropped + b.overwritten }

// Build produces the immutable graph. The Builder may be reused afterwards;
// its recorded edges are retained.
func (b *Builder) Build() (*Graph, error) {
	if b.numNodes == 0 && len(b.edges) > 0 {
		return nil, errors.New("graph: edges recorded but node space is empty")
	}
	edges := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		if e.U == e.V && !b.allowSelfLoops {
			continue
		}
		edges = append(edges, e)
	}
	// Stable sort so instances of the same (u, v) keep recording order,
	// making "the last recorded instance" well defined for the dedup below.
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	// Deduplicate in place, last write wins: within a run of equal edges the
	// final instance is the one kept (for unweighted edges the instances are
	// indistinguishable, but the policy is the delta-stream semantic and the
	// overwrite count is observable via Dropped).
	b.overwritten = 0
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			b.overwritten++
			dedup[len(dedup)-1] = e
			continue
		}
		dedup = append(dedup, e)
	}
	edges = dedup

	g := &Graph{
		numNodes:       b.numNodes,
		numEdges:       int64(len(edges)),
		outOff:         make([]int64, b.numNodes+1),
		outAdj:         make([]int32, len(edges)),
		inOff:          make([]int64, b.numNodes+1),
		inAdj:          make([]int32, len(edges)),
		allowSelfLoops: b.allowSelfLoops,
	}

	// Counting pass for both directions.
	for _, e := range edges {
		g.outOff[e.U+1]++
		g.inOff[e.V+1]++
	}
	for i := int32(0); i < b.numNodes; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	// Fill pass. Out-adjacency is already sorted by (U, V); in-adjacency
	// receives sources in ascending order because edges are sorted by U.
	cursor := make([]int64, b.numNodes)
	for i, e := range edges {
		g.outAdj[i] = e.V
		g.inAdj[g.inOff[e.V]+cursor[e.V]] = e.U
		cursor[e.V]++
	}
	return g, nil
}

// FromEdges builds a graph with numNodes nodes from an edge list,
// dropping self-loops and duplicates.
func FromEdges(numNodes int32, edges []Edge) (*Graph, error) {
	b := NewBuilder(numNodes)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// FromSortedAdjacency builds a graph directly from per-node out-neighbour
// rows that are already strictly ascending — the snapshot materialization
// path of internal/dyngraph, which maintains sorted rows incrementally and
// must not pay the Builder's O(E log E) re-sort on every mutation batch.
// Row u lists the out-neighbours of node u; the node count is len(out).
// The rows are copied, never aliased, so the returned graph stays immutable
// when the caller keeps mutating its rows. O(V + E).
//
// Every neighbour must be in [0, len(out)) and each row strictly ascending
// (duplicates are a row invariant violation here, not collapsed); self-loops
// are rejected unless allowSelfLoops, mirroring the Builder policy.
func FromSortedAdjacency(out [][]int32, allowSelfLoops bool) (*Graph, error) {
	n := int32(len(out))
	var m int64
	for u, row := range out {
		prev := int32(-1)
		for _, v := range row {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph: from sorted adjacency: node %d: neighbour %d out of range [0,%d)", u, v, n)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: from sorted adjacency: node %d: row not strictly ascending at neighbour %d", u, v)
			}
			if v == int32(u) && !allowSelfLoops {
				return nil, fmt.Errorf("graph: from sorted adjacency: self-loop %d->%d not allowed", u, u)
			}
			prev = v
		}
		m += int64(len(row))
	}
	g := &Graph{
		numNodes:       n,
		numEdges:       m,
		outOff:         make([]int64, n+1),
		outAdj:         make([]int32, m),
		inOff:          make([]int64, n+1),
		inAdj:          make([]int32, m),
		allowSelfLoops: allowSelfLoops,
	}
	// Counting pass for the in-direction; the out-direction offsets follow
	// the row lengths directly.
	for u, row := range out {
		g.outOff[u+1] = g.outOff[u] + int64(len(row))
		for _, v := range row {
			g.inOff[v+1]++
		}
	}
	for i := int32(0); i < n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	// Fill pass. Out-adjacency copies the sorted rows; in-adjacency receives
	// sources in ascending order because rows are visited in node order.
	cursor := make([]int64, n)
	for u, row := range out {
		copy(g.outAdj[g.outOff[u]:g.outOff[u+1]], row)
		for _, v := range row {
			g.inAdj[g.inOff[v]+cursor[v]] = int32(u)
			cursor[v]++
		}
	}
	return g, nil
}
