package graph

import "lcrb/internal/rng"

// ClusteringCoefficient returns the mean local clustering coefficient over
// nodes with at least two neighbours, treating the graph as undirected
// (an edge in either direction counts as a connection). Real social
// networks — including the paper's Enron and Hep datasets — have high
// clustering; the statistic lets the synthetic substitutes be compared
// against the originals.
func ClusteringCoefficient(g *Graph) float64 {
	n := g.NumNodes()
	var sum float64
	var counted int
	// Undirected neighbourhood per node, deduplicated via merge of the
	// sorted Out and In lists.
	neighbours := func(u int32) []int32 {
		out, in := g.Out(u), g.In(u)
		merged := make([]int32, 0, len(out)+len(in))
		i, j := 0, 0
		for i < len(out) || j < len(in) {
			var v int32
			switch {
			case i == len(out):
				v = in[j]
				j++
			case j == len(in):
				v = out[i]
				i++
			case out[i] < in[j]:
				v = out[i]
				i++
			case out[i] > in[j]:
				v = in[j]
				j++
			default:
				v = out[i]
				i++
				j++
			}
			if v != u && (len(merged) == 0 || merged[len(merged)-1] != v) {
				merged = append(merged, v)
			}
		}
		return merged
	}
	connected := func(a, b int32) bool { return g.HasEdge(a, b) || g.HasEdge(b, a) }

	for u := int32(0); u < n; u++ {
		nb := neighbours(u)
		k := len(nb)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if connected(nb[i], nb[j]) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(k*(k-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// EstimateDiameter estimates the directed diameter (longest shortest path)
// and the mean shortest-path length of the graph by BFS from `samples`
// random source nodes, ignoring unreachable pairs. Exact for samples >=
// NumNodes. Returns zeros for empty graphs.
func EstimateDiameter(g *Graph, samples int, seed uint64) (diameter int32, meanPath float64) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0
	}
	if samples <= 0 || int32(samples) > n {
		samples = int(n)
	}
	src := rng.New(seed)
	sources := src.SampleInt32(n, int32(samples))
	var sum, count int64
	for _, s := range sources {
		dist := Distances(g, []int32{s}, Forward)
		for _, d := range dist {
			if d == Unreachable || d == 0 {
				continue
			}
			if d > diameter {
				diameter = d
			}
			sum += int64(d)
			count++
		}
	}
	if count > 0 {
		meanPath = float64(sum) / float64(count)
	}
	return diameter, meanPath
}
