package graph

import (
	"math"
	"reflect"
	"testing"

	"lcrb/internal/rng"
)

func TestPageRankEmpty(t *testing.T) {
	g := buildMust(t, 0, nil)
	if pr := PageRank(g, PageRankOptions{}); pr != nil {
		t.Fatalf("PageRank(empty) = %v", pr)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	src := rng.New(5001)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(src, 60)
		if g.NumNodes() == 0 {
			continue
		}
		pr := PageRank(g, PageRankOptions{})
		var sum float64
		for _, v := range pr {
			if v < 0 {
				t.Fatal("negative PageRank")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("PageRank sums to %v", sum)
		}
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every node has the same rank.
	b := NewBuilder(5)
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, (i+1)%5)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, PageRankOptions{})
	for _, v := range pr {
		if math.Abs(v-0.2) > 1e-6 {
			t.Fatalf("cycle PageRank = %v, want uniform 0.2", pr)
		}
	}
}

func TestPageRankFavoursSink(t *testing.T) {
	// Star pointing at node 0: node 0 must outrank the spokes.
	g := buildMust(t, 4, []Edge{{1, 0}, {2, 0}, {3, 0}})
	pr := PageRank(g, PageRankOptions{})
	for v := 1; v < 4; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %v not above spoke rank %v", pr[0], pr[v])
		}
	}
}

func TestPageRankDanglingMassConserved(t *testing.T) {
	// Node 1 is dangling; ranks must still sum to 1.
	g := buildMust(t, 3, []Edge{{0, 1}, {2, 1}})
	pr := PageRank(g, PageRankOptions{})
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
	if pr[1] <= pr[0] {
		t.Fatalf("sink rank %v not above source rank %v", pr[1], pr[0])
	}
}

func TestPageRankOptionDefaults(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	// Out-of-range options fall back to defaults rather than diverging.
	pr := PageRank(g, PageRankOptions{Damping: 7, MaxIterations: -1, Tolerance: -2})
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestTopByPageRank(t *testing.T) {
	g := buildMust(t, 4, []Edge{{1, 0}, {2, 0}, {3, 0}, {0, 1}})
	top := TopByPageRank(g, 2, PageRankOptions{})
	if len(top) != 2 || top[0] != 0 {
		t.Fatalf("TopByPageRank = %v, want node 0 first", top)
	}
	if got := TopByPageRank(g, -1, PageRankOptions{}); len(got) != 0 {
		t.Fatalf("TopByPageRank(-1) = %v", got)
	}
	if got := TopByPageRank(g, 99, PageRankOptions{}); len(got) != 4 {
		t.Fatalf("TopByPageRank(99) = %v", got)
	}
}

func TestSCCSimple(t *testing.T) {
	// Cycle {0,1,2} plus a tail 2 -> 3 -> 4.
	g := buildMust(t, 5, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}})
	comp, count := StronglyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle nodes split: %v", comp)
	}
	if comp[3] == comp[0] || comp[4] == comp[3] {
		t.Fatalf("tail nodes merged: %v", comp)
	}
	// Reverse topological numbering: the cycle reaches 3 and 4, so its
	// component id must be larger.
	if !(comp[0] > comp[3] && comp[3] > comp[4]) {
		t.Fatalf("component numbering not reverse-topological: %v", comp)
	}
}

func TestSCCSingletons(t *testing.T) {
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}})
	comp, count := StronglyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (DAG of singletons)", count)
	}
	seen := make(map[int32]bool)
	for _, c := range comp {
		if seen[c] {
			t.Fatalf("DAG nodes share a component: %v", comp)
		}
		seen[c] = true
	}
}

func TestSCCMatchesReachability(t *testing.T) {
	// Property: u and v share an SCC iff they reach each other.
	src := rng.New(5002)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(src, 30)
		comp, _ := StronglyConnectedComponents(g)
		n := g.NumNodes()
		for u := int32(0); u < n; u++ {
			du := Distances(g, []int32{u}, Forward)
			for v := int32(0); v < n; v++ {
				dv := Distances(g, []int32{v}, Forward)
				mutual := du[v] != Unreachable && dv[u] != Unreachable
				if mutual != (comp[u] == comp[v]) {
					t.Fatalf("nodes %d,%d: mutual=%v but comp %d vs %d",
						u, v, mutual, comp[u], comp[v])
				}
			}
		}
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-node chain would overflow a recursive Tarjan.
	const n = 200000
	b := NewBuilder(n)
	for i := int32(0); i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, count := StronglyConnectedComponents(g)
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestLargestComponent(t *testing.T) {
	comp := []int32{0, 1, 1, 1, 2}
	got := LargestComponent(comp, 3)
	if !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Fatalf("LargestComponent = %v", got)
	}
	if got := LargestComponent(nil, 0); got != nil {
		t.Fatalf("empty LargestComponent = %v", got)
	}
}
