package graph

import (
	"reflect"
	"testing"

	"lcrb/internal/rng"
)

// chain returns the path graph 0 -> 1 -> ... -> n-1.
func chain(t *testing.T, n int32) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := int32(0); i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDistancesChain(t *testing.T) {
	g := chain(t, 5)
	got := Distances(g, []int32{0}, Forward)
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distances = %v, want %v", got, want)
	}
}

func TestDistancesBackward(t *testing.T) {
	g := chain(t, 5)
	got := Distances(g, []int32{4}, Backward)
	want := []int32{4, 3, 2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("backward Distances = %v, want %v", got, want)
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := buildMust(t, 4, []Edge{{0, 1}})
	got := Distances(g, []int32{0}, Forward)
	want := []int32{0, 1, Unreachable, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distances = %v, want %v", got, want)
	}
}

func TestDistancesMultiSource(t *testing.T) {
	g := chain(t, 7)
	got := Distances(g, []int32{0, 4}, Forward)
	want := []int32{0, 1, 2, 3, 0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-source Distances = %v, want %v", got, want)
	}
}

func TestDistancesDuplicateAndInvalidSources(t *testing.T) {
	g := chain(t, 3)
	got := Distances(g, []int32{0, 0, -1, 99}, Forward)
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distances = %v, want %v", got, want)
	}
}

func TestDistancesBounded(t *testing.T) {
	g := chain(t, 6)
	got := DistancesBounded(g, []int32{0}, Forward, 2)
	want := []int32{0, 1, 2, Unreachable, Unreachable, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DistancesBounded = %v, want %v", got, want)
	}
}

func TestDistancesBoundedZero(t *testing.T) {
	g := chain(t, 3)
	got := DistancesBounded(g, []int32{1}, Forward, 0)
	want := []int32{Unreachable, 0, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DistancesBounded depth 0 = %v, want %v", got, want)
	}
}

func TestDistancesShortestOnDiamond(t *testing.T) {
	// 0 -> 1 -> 3 and 0 -> 2 -> 3 -> 4; plus long detour 1 -> 5 -> 4.
	g := buildMust(t, 6, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {1, 5}, {5, 4}})
	got := Distances(g, []int32{0}, Forward)
	want := []int32{0, 1, 1, 2, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Distances = %v, want %v", got, want)
	}
}

func TestReachable(t *testing.T) {
	g := buildMust(t, 6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	got := Reachable(g, []int32{0}, Forward)
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reachable = %v, want %v", got, want)
	}
	back := Reachable(g, []int32{4}, Backward)
	if !reflect.DeepEqual(back, []int32{4, 3}) {
		t.Fatalf("backward Reachable = %v, want [4 3]", back)
	}
}

func TestRestrictedDistances(t *testing.T) {
	// Community = {0, 1}; node 2 and 3 are outside. Expansion must stop at 2,
	// so 3 stays unreachable even though 2 -> 3 exists.
	g := buildMust(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	inside := func(u NodeID) bool { return u <= 1 }
	got := RestrictedDistances(g, []int32{0}, Forward, inside)
	want := []int32{0, 1, 2, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RestrictedDistances = %v, want %v", got, want)
	}
}

func TestRestrictedDistancesSourceAlwaysExpands(t *testing.T) {
	// Even if the source fails the predicate it must still expand, mirroring
	// rumor seeds that sit on a community boundary.
	g := buildMust(t, 3, []Edge{{0, 1}, {1, 2}})
	got := RestrictedDistances(g, []int32{0}, Forward, func(u NodeID) bool { return false })
	want := []int32{0, 1, Unreachable}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RestrictedDistances = %v, want %v", got, want)
	}
}

func TestRestrictedMatchesUnrestrictedWhenAllAllowed(t *testing.T) {
	src := rng.New(2001)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(src, 50)
		s := src.Int32n(g.NumNodes())
		a := Distances(g, []int32{s}, Forward)
		b := RestrictedDistances(g, []int32{s}, Forward, func(NodeID) bool { return true })
		if !reflect.DeepEqual(a, b) {
			t.Fatal("restricted BFS with permissive predicate diverged from plain BFS")
		}
	}
}

func TestForwardBackwardSymmetry(t *testing.T) {
	// dist_forward(u -> v) on g equals dist_forward(v -> u) on reverse(g).
	src := rng.New(2002)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(src, 40)
		s := src.Int32n(g.NumNodes())
		fwd := Distances(g, []int32{s}, Backward)
		rev := Distances(g.Reverse(), []int32{s}, Forward)
		if !reflect.DeepEqual(fwd, rev) {
			t.Fatal("Backward on g != Forward on Reverse(g)")
		}
	}
}

func TestDistanceStepProperty(t *testing.T) {
	// For every edge (u, v): dist(v) <= dist(u) + 1 when u is reachable.
	src := rng.New(2003)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(src, 50)
		s := src.Int32n(g.NumNodes())
		dist := Distances(g, []int32{s}, Forward)
		for _, e := range g.Edges() {
			if dist[e.U] == Unreachable {
				continue
			}
			if dist[e.V] == Unreachable || dist[e.V] > dist[e.U]+1 {
				t.Fatalf("edge (%d,%d): dist %d -> %d violates BFS step property",
					e.U, e.V, dist[e.U], dist[e.V])
			}
		}
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := buildMust(t, 7, []Edge{{0, 1}, {2, 1}, {3, 4}})
	comp, count := WeaklyConnectedComponents(g)
	if count != 4 {
		t.Fatalf("component count = %d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("nodes 0,1,2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Fatalf("nodes 3,4 should share a component: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] || comp[5] == comp[6] {
		t.Fatalf("isolated nodes must be singleton components: %v", comp)
	}
}

func TestComponentsPartitionNodes(t *testing.T) {
	src := rng.New(2004)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(src, 60)
		comp, count := WeaklyConnectedComponents(g)
		seen := make([]bool, count)
		for u, c := range comp {
			if c < 0 || c >= count {
				t.Fatalf("node %d has invalid component %d", u, c)
			}
			seen[c] = true
		}
		for c, ok := range seen {
			if !ok {
				t.Fatalf("component id %d unused", c)
			}
		}
		// Every edge joins nodes of the same weak component.
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e.V] {
				t.Fatalf("edge (%d,%d) crosses weak components", e.U, e.V)
			}
		}
	}
}
