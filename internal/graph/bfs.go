package graph

// Direction selects which adjacency a traversal follows.
type Direction int

const (
	// Forward follows out-edges: u -> v means v is visited from u.
	Forward Direction = iota + 1
	// Backward follows in-edges: u -> v means u is visited from v.
	Backward
)

// neighbors returns the adjacency of u in the given direction.
func (g *Graph) neighbors(u NodeID, dir Direction) []int32 {
	if dir == Backward {
		return g.In(u)
	}
	return g.Out(u)
}

// Unreachable is the distance value assigned to nodes a BFS never reaches.
const Unreachable int32 = -1

// Distances runs a multi-source BFS from sources in the given direction and
// returns the hop distance of every node (Unreachable where no path exists).
// Source nodes have distance 0. Duplicate sources are harmless.
func Distances(g *Graph, sources []int32, dir Direction) []int32 {
	return DistancesBounded(g, sources, dir, -1)
}

// DistancesBounded is Distances limited to maxDepth hops. Nodes farther than
// maxDepth keep distance Unreachable. A negative maxDepth means unbounded.
func DistancesBounded(g *Graph, sources []int32, dir Direction, maxDepth int32) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.NumNodes() || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		d := dist[u]
		if maxDepth >= 0 && d >= maxDepth {
			continue
		}
		for _, v := range g.neighbors(u, dir) {
			if dist[v] == Unreachable {
				dist[v] = d + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Reachable returns the nodes reachable from sources (inclusive) in the
// given direction, in BFS order.
func Reachable(g *Graph, sources []int32, dir Direction) []int32 {
	seen := make([]bool, g.NumNodes())
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.NumNodes() || seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.neighbors(u, dir) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// RestrictedDistances runs a multi-source BFS that only *expands* through
// nodes for which expand returns true. Nodes failing the predicate still
// receive a distance when first reached, but their neighbours are not
// explored through them. Sources are always expanded.
//
// This is the primitive behind Rumor Forward Search Trees: BFS from the
// rumor seeds expands only inside the rumor community; the first nodes
// reached outside it (the bridge ends) are recorded but not expanded.
func RestrictedDistances(g *Graph, sources []int32, dir Direction, expand func(NodeID) bool) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.NumNodes() || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] > 0 && !expand(u) {
			continue
		}
		for _, v := range g.neighbors(u, dir) {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// WeaklyConnectedComponents assigns every node a component identifier,
// ignoring edge direction, and returns the assignment together with the
// number of components. Component identifiers are dense in [0, count).
func WeaklyConnectedComponents(g *Graph) (comp []int32, count int32) {
	comp = make([]int32, g.NumNodes())
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for start := int32(0); start < g.NumNodes(); start++ {
		if comp[start] >= 0 {
			continue
		}
		comp[start] = count
		queue = append(queue[:0], start)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Out(u) {
				if comp[v] < 0 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
			for _, v := range g.In(u) {
				if comp[v] < 0 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}
