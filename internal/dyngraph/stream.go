package dyngraph

import (
	"fmt"
	"time"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// streamEpoch anchors generated timestamps: a fixed instant, never the wall
// clock, so two runs with the same seed emit identical stream bytes.
const streamEpoch = "2026-01-01T00:00:00Z"

// StreamConfig tunes GenerateStream. The zero value selects the defaults.
type StreamConfig struct {
	// MaxAdds bounds the edge insertions per batch (uniform in [0, MaxAdds]).
	// Defaults to 4.
	MaxAdds int
	// MaxRemoves bounds the edge removals per batch. Defaults to 2.
	MaxRemoves int
	// AddNodeEvery makes every k-th batch grow the node space by one fresh
	// node (wired to an existing node so it participates). 0 disables;
	// defaults to 7.
	AddNodeEvery int
	// RemoveNodeEvery makes every k-th batch isolate one random node.
	// 0 disables; defaults to 0.
	RemoveNodeEvery int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.MaxAdds == 0 {
		c.MaxAdds = 4
	}
	if c.MaxRemoves == 0 {
		c.MaxRemoves = 2
	}
	if c.AddNodeEvery == 0 {
		c.AddNodeEvery = 7
	}
	return c
}

// GenerateStream produces a deterministic timestamped mutation stream of
// batches valid against g: batch i carries BaseVersion i+1, so replaying
// the stream in order against NewMaster(g) (or a freshly booted
// lcrbd -dynamic on the same instance) applies cleanly. Every batch is
// validated by actually applying it to an internal master — the generator
// can never emit a stream that fails validation. Timestamps step one second
// from a fixed epoch; the whole stream is a pure function of (g, batches,
// seed, cfg).
func GenerateStream(g *graph.Graph, batches int, seed uint64, cfg StreamConfig) ([]StreamDelta, error) {
	if batches < 0 {
		return nil, fmt.Errorf("dyngraph: generate stream: batches = %d must not be negative", batches)
	}
	m, err := NewMaster(g)
	if err != nil {
		return nil, fmt.Errorf("dyngraph: generate stream: %w", err)
	}
	cfg = cfg.withDefaults()
	epoch, err := time.Parse(time.RFC3339, streamEpoch)
	if err != nil {
		panic(fmt.Sprintf("dyngraph: generate stream: bad epoch constant: %v", err))
	}
	src := rng.New(seed)
	out := make([]StreamDelta, 0, batches)
	for i := 0; i < batches; i++ {
		d := Delta{BaseVersion: m.Version()}
		n := m.NumNodes()
		if cfg.AddNodeEvery > 0 && (i+1)%cfg.AddNodeEvery == 0 {
			// Grow by one node and wire it to a random existing node so the
			// newcomer participates in later diffusion instead of idling.
			d.AddNodes = 1
			if n > 0 {
				d.AddEdges = append(d.AddEdges, [2]int32{src.Int32n(n), n})
			}
			n++
		}
		if cfg.RemoveNodeEvery > 0 && (i+1)%cfg.RemoveNodeEvery == 0 && n > 0 {
			d.RemoveNodes = append(d.RemoveNodes, src.Int32n(n))
		}
		if removes := src.Intn(cfg.MaxRemoves + 1); removes > 0 {
			// Sample existing edges from the current snapshot so most
			// removals are realized rather than no-ops.
			edges := m.Snapshot().Graph.Edges()
			for r := 0; r < removes && len(edges) > 0; r++ {
				e := edges[src.Intn(len(edges))]
				d.RemoveEdges = append(d.RemoveEdges, [2]int32{e.U, e.V})
			}
		}
		adds := src.Intn(cfg.MaxAdds + 1)
		if adds == 0 && d.Empty() {
			adds = 1 // every batch mutates something
		}
		for a := 0; a < adds && n > 1; a++ {
			u := src.Int32n(n)
			v := src.Int32n(n)
			for tries := 0; u == v && tries < 8; tries++ {
				v = src.Int32n(n)
			}
			if u == v {
				continue
			}
			d.AddEdges = append(d.AddEdges, [2]int32{u, v})
		}
		if _, _, err := m.ApplyDelta(d); err != nil {
			return nil, fmt.Errorf("dyngraph: generate stream: batch %d: %w", i, err)
		}
		out = append(out, StreamDelta{
			Time:  epoch.Add(time.Duration(i) * time.Second).Format(time.RFC3339),
			Delta: d,
		})
	}
	return out, nil
}
