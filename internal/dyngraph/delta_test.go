package dyngraph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"lcrb/internal/graph"
)

func TestStreamRoundTrip(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	deltas, err := GenerateStream(g, 15, 21, StreamConfig{RemoveNodeEvery: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	// JSONL: exactly one line per delta.
	if lines := strings.Count(buf.String(), "\n"); lines != len(deltas) {
		t.Fatalf("wrote %d lines for %d deltas", lines, len(deltas))
	}
	got, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, deltas) {
		t.Fatal("stream round trip drifted")
	}
}

func TestWriteStreamDeterministicBytes(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	deltas, err := GenerateStream(g, 10, 5, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteStream(&a, deltas); err != nil {
		t.Fatal(err)
	}
	if err := WriteStream(&b, deltas); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("stream bytes not reproducible")
	}
}

func TestReadStreamSkipsBlankRejectsMalformed(t *testing.T) {
	got, err := ReadStream(strings.NewReader("\n{\"ts\":\"2026-01-01T00:00:00Z\",\"baseVersion\":1,\"addNodes\":2}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].BaseVersion != 1 || got[0].AddNodes != 2 {
		t.Fatalf("got %+v", got)
	}
	if _, err := ReadStream(strings.NewReader("{\"baseVersion\": }\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestDeltaEmpty(t *testing.T) {
	if !(Delta{BaseVersion: 3}).Empty() {
		t.Fatal("no-op delta should be Empty")
	}
	if (Delta{AddNodes: 1}).Empty() || (Delta{AddEdges: [][2]int32{{0, 1}}}).Empty() ||
		(Delta{RemoveEdges: [][2]int32{{0, 1}}}).Empty() || (Delta{RemoveNodes: []int32{0}}).Empty() {
		t.Fatal("delta with operations should not be Empty")
	}
}
