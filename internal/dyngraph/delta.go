package dyngraph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Delta is one batched mutation: node growth plus edge insertions and
// deletions, applied atomically against BaseVersion. The JSON shape is
// shared by the lcrbgen -deltas stream files and the lcrbd
// POST /v1/graph/delta body, so a generated stream replays against a
// daemon verbatim. Edges are [u, v] pairs.
type Delta struct {
	// BaseVersion is the master version this delta was prepared against;
	// ApplyDelta rejects it (ErrVersionConflict) when the master moved.
	BaseVersion uint64 `json:"baseVersion"`
	// AddNodes grows the node space by that many fresh, initially isolated
	// identifiers (the previous node count up).
	AddNodes int32 `json:"addNodes,omitempty"`
	// AddEdges / RemoveEdges are directed [u, v] pairs. Removals apply
	// before additions; within additions, last write wins.
	AddEdges    [][2]int32 `json:"addEdges,omitempty"`
	RemoveEdges [][2]int32 `json:"removeEdges,omitempty"`
	// RemoveNodes isolates nodes: every incident edge is dropped, the
	// identifier stays allocated (dense ids survive every version).
	RemoveNodes []int32 `json:"removeNodes,omitempty"`
}

// Empty reports whether the delta carries no operations at all.
func (d Delta) Empty() bool {
	return d.AddNodes == 0 && len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0 && len(d.RemoveNodes) == 0
}

// StreamDelta is one line of a mutation stream file: a delta with its
// (synthetic, deterministic) timestamp.
type StreamDelta struct {
	// Time is an RFC3339 timestamp. Generated streams derive it from a
	// fixed epoch, never the wall clock, so stream bytes are reproducible.
	Time string `json:"ts"`
	Delta
}

// WriteStream writes deltas as JSONL: one compact JSON object per line,
// replayable by ReadStream and by POSTing each line's delta fields to
// /v1/graph/delta in order.
func WriteStream(w io.Writer, deltas []StreamDelta) error {
	enc := json.NewEncoder(w)
	for i, d := range deltas {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("dyngraph: write stream: delta %d: %w", i, err)
		}
	}
	return nil
}

// ReadStream parses a JSONL mutation stream. Blank lines are skipped; any
// malformed line fails the whole read (a torn stream must not half-apply).
func ReadStream(r io.Reader) ([]StreamDelta, error) {
	var out []StreamDelta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var d StreamDelta
		if err := json.Unmarshal(text, &d); err != nil {
			return nil, fmt.Errorf("dyngraph: read stream: line %d: %w", line, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dyngraph: read stream: %w", err)
	}
	return out, nil
}
