// Package dyngraph separates the mutable master graph from the immutable
// snapshot views the rest of the module consumes. Every sampler, solver and
// sketch in this repository assumes one frozen *graph.Graph; a live network
// is never frozen. The Master closes that gap: it holds per-node sorted
// adjacency rows that batched deltas mutate in place, a monotonically
// increasing Version, and a mutation log of per-batch touched-region
// summaries. After each batch it materializes a fresh immutable CSR
// snapshot (graph.FromSortedAdjacency, O(V+E), no re-sort), so readers
// always hold a graph that no future delta can touch — the rows are copied
// at snapshot time, mutated only afterwards.
//
// The dirty summaries are the contract the incremental sketch maintenance
// of internal/sketch builds on: a node is dirty in a batch when its
// out-row or in-row changed, and a realization whose recorded footprint
// avoids every dirty node of every batch between two versions re-samples
// identically on the new snapshot (see sketch.Repair). DirtySince unions
// the per-batch dirty sets so a consumer several batches behind repairs
// old→latest in one step.
//
// Node identifiers stay dense across the whole history: removing a node
// isolates it (drops every incident edge) rather than renumbering, so ids
// recorded in sketches, rumor sets and client requests stay valid at every
// version.
package dyngraph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"lcrb/internal/graph"
)

// ErrVersionConflict is returned (wrapped) by ApplyDelta when the delta's
// BaseVersion is not the master's current version — the optimistic
// concurrency check that serializes writers. Test with errors.Is; the error
// text carries both versions.
var ErrVersionConflict = errors.New("dyngraph: version conflict")

// ErrInvalidDelta is returned (wrapped) when a delta fails validation —
// endpoints out of range, self-loops, negative node growth. The master is
// untouched: validation completes before the first mutation.
var ErrInvalidDelta = errors.New("dyngraph: invalid delta")

// Snapshot is one immutable view of the graph: the CSR graph as of Version.
// Snapshots are never mutated after creation and are safe to share across
// goroutines, exactly like every other *graph.Graph in this module.
type Snapshot struct {
	Graph   *graph.Graph
	Version uint64
}

// Summary is the touched-region record of one applied batch: which nodes'
// adjacency rows changed, and the realized operation counts (an add of an
// edge that already exists, or a remove of one that does not, is a no-op —
// counted, but not dirty).
type Summary struct {
	// Version is the master version this batch produced.
	Version uint64 `json:"version"`
	// DirtyNodes lists, ascending, every node whose out-row or in-row
	// changed in this batch.
	DirtyNodes []int32 `json:"dirtyNodes,omitempty"`
	// AddedNodes is the node-space growth of the batch.
	AddedNodes int32 `json:"addedNodes,omitempty"`
	// AddedEdges / RemovedEdges count realized edge mutations.
	AddedEdges   int `json:"addedEdges,omitempty"`
	RemovedEdges int `json:"removedEdges,omitempty"`
	// RedundantAdds counts adds of edges already present (last write wins:
	// the surviving edge is the latest instance, indistinguishable for an
	// unweighted graph but counted honestly). MissingRemoves counts removes
	// of absent edges.
	RedundantAdds  int `json:"redundantAdds,omitempty"`
	MissingRemoves int `json:"missingRemoves,omitempty"`
}

// Master is the mutable graph. All methods are safe for concurrent use; a
// batch is applied atomically under the master's lock and readers only ever
// observe complete versions via Snapshot.
type Master struct {
	mu             sync.Mutex
	allowSelfLoops bool
	out            [][]int32 // sorted, strictly ascending per row
	in             [][]int32
	version        uint64
	snap           *Snapshot
	log            []Summary // log[i] summarizes the batch producing version i+2
}

// NewMaster wraps g as version 1 of a mutable graph. The master copies g's
// adjacency into its own rows; g itself becomes the version-1 snapshot and
// is never touched.
func NewMaster(g *graph.Graph) (*Master, error) {
	if g == nil {
		return nil, fmt.Errorf("dyngraph: new master: nil graph")
	}
	n := g.NumNodes()
	m := &Master{
		allowSelfLoops: g.AllowsSelfLoops(),
		out:            make([][]int32, n),
		in:             make([][]int32, n),
		version:        1,
		snap:           &Snapshot{Graph: g, Version: 1},
	}
	for u := int32(0); u < n; u++ {
		m.out[u] = append([]int32(nil), g.Out(u)...)
		m.in[u] = append([]int32(nil), g.In(u)...)
	}
	return m, nil
}

// Version returns the current master version. Versions start at 1 and
// increase by exactly 1 per applied batch.
func (m *Master) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Snapshot returns the immutable view of the current version.
func (m *Master) Snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap
}

// NumNodes returns the current node count.
func (m *Master) NumNodes() int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int32(len(m.out))
}

// Log returns the mutation log: one Summary per applied batch, in version
// order. The returned slice is a copy.
func (m *Master) Log() []Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Summary(nil), m.log...)
}

// DirtySince unions the dirty node sets of every batch applied after
// version from, ascending — the touched region a consumer at version from
// must reconcile to reach the current version. from == current returns nil.
func (m *Master) DirtySince(from uint64) ([]int32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < 1 || from > m.version {
		return nil, fmt.Errorf("dyngraph: dirty since: version %d out of [1,%d]", from, m.version)
	}
	if from == m.version {
		return nil, nil
	}
	seen := make(map[int32]bool)
	var out []int32
	for _, s := range m.log[from-1:] {
		for _, v := range s.DirtyNodes {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ApplyDelta validates and applies one batch, returning the new snapshot
// and the batch summary. The delta must carry BaseVersion equal to the
// current version (else a wrapped ErrVersionConflict); validation failures
// wrap ErrInvalidDelta and leave the master untouched. Operations apply
// RemoveNodes, then RemoveEdges, then AddEdges — removals first, adds last,
// so a batch that removes and re-adds an edge nets to the add (last write
// wins, the Builder's duplicate policy).
func (m *Master) ApplyDelta(d Delta) (*Snapshot, *Summary, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d.BaseVersion != m.version {
		return nil, nil, fmt.Errorf("dyngraph: apply: delta base version %d, master at version %d: %w",
			d.BaseVersion, m.version, ErrVersionConflict)
	}
	if err := m.validateLocked(d); err != nil {
		return nil, nil, err
	}

	newN := int32(len(m.out)) + d.AddNodes
	m.out = append(m.out, make([][]int32, d.AddNodes)...)
	m.in = append(m.in, make([][]int32, d.AddNodes)...)

	dirtyMark := make([]bool, newN)
	var dirty []int32
	mark := func(v int32) {
		if !dirtyMark[v] {
			dirtyMark[v] = true
			dirty = append(dirty, v)
		}
	}

	sum := Summary{Version: m.version + 1, AddedNodes: d.AddNodes}
	for _, r := range d.RemoveNodes {
		removed := len(m.out[r]) + len(m.in[r])
		if removed == 0 {
			continue // already isolated
		}
		if contains(m.out[r], r) {
			removed-- // a self-loop sits in both rows but is one edge
		}
		for _, v := range m.out[r] {
			if v != r {
				m.in[v] = removeSorted(m.in[v], r)
				mark(v)
			}
		}
		for _, u := range m.in[r] {
			if u != r {
				m.out[u] = removeSorted(m.out[u], r)
				mark(u)
			}
		}
		m.out[r], m.in[r] = nil, nil
		mark(r)
		sum.RemovedEdges += removed
	}
	for _, e := range d.RemoveEdges {
		u, v := e[0], e[1]
		if !contains(m.out[u], v) {
			sum.MissingRemoves++
			continue
		}
		m.out[u] = removeSorted(m.out[u], v)
		m.in[v] = removeSorted(m.in[v], u)
		mark(u)
		mark(v)
		sum.RemovedEdges++
	}
	for _, e := range d.AddEdges {
		u, v := e[0], e[1]
		if contains(m.out[u], v) {
			sum.RedundantAdds++
			continue
		}
		m.out[u] = insertSorted(m.out[u], v)
		m.in[v] = insertSorted(m.in[v], u)
		mark(u)
		mark(v)
		sum.AddedEdges++
	}

	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	sum.DirtyNodes = dirty

	g, err := graph.FromSortedAdjacency(m.out, m.allowSelfLoops)
	if err != nil {
		// Unreachable: validation keeps the rows a valid simple digraph.
		panic(fmt.Sprintf("dyngraph: apply: materialize snapshot: %v", err))
	}
	m.version++
	m.snap = &Snapshot{Graph: g, Version: m.version}
	m.log = append(m.log, sum)
	return m.snap, &sum, nil
}

// validateLocked checks every operation of d against the post-growth node
// space before anything mutates.
func (m *Master) validateLocked(d Delta) error {
	if d.AddNodes < 0 {
		return fmt.Errorf("dyngraph: apply: addNodes = %d must not be negative: %w", d.AddNodes, ErrInvalidDelta)
	}
	newN := int64(len(m.out)) + int64(d.AddNodes)
	if newN > math.MaxInt32 {
		return fmt.Errorf("dyngraph: apply: addNodes = %d overflows the node space: %w", d.AddNodes, ErrInvalidDelta)
	}
	check := func(op string, u, v int32) error {
		if u < 0 || int64(u) >= newN || v < 0 || int64(v) >= newN {
			return fmt.Errorf("dyngraph: apply: %s (%d,%d): endpoint out of range [0,%d): %w", op, u, v, newN, ErrInvalidDelta)
		}
		if u == v && !m.allowSelfLoops {
			return fmt.Errorf("dyngraph: apply: %s (%d,%d): self-loops not allowed: %w", op, u, v, ErrInvalidDelta)
		}
		return nil
	}
	for _, e := range d.AddEdges {
		if err := check("add edge", e[0], e[1]); err != nil {
			return err
		}
	}
	for _, e := range d.RemoveEdges {
		if err := check("remove edge", e[0], e[1]); err != nil {
			return err
		}
	}
	for _, r := range d.RemoveNodes {
		if r < 0 || int64(r) >= newN {
			return fmt.Errorf("dyngraph: apply: remove node %d out of range [0,%d): %w", r, newN, ErrInvalidDelta)
		}
	}
	return nil
}

// contains reports membership in a sorted row.
func contains(row []int32, v int32) bool {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// insertSorted inserts v into a sorted row without duplicates (the caller
// checked absence).
func insertSorted(row []int32, v int32) []int32 {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = v
	return row
}

// removeSorted removes v from a sorted row (the caller checked presence for
// out-rows; in-rows mirror them).
func removeSorted(row []int32, v int32) []int32 {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i >= len(row) || row[i] != v {
		return row
	}
	return append(row[:i], row[i+1:]...)
}
