package dyngraph

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func mustGraph(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func mustMaster(t *testing.T, g *graph.Graph) *Master {
	t.Helper()
	m, err := NewMaster(g)
	if err != nil {
		t.Fatalf("NewMaster: %v", err)
	}
	return m
}

func TestNewMasterVersionOneSharesSeedGraph(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	m := mustMaster(t, g)
	if m.Version() != 1 {
		t.Fatalf("Version = %d, want 1", m.Version())
	}
	snap := m.Snapshot()
	if snap.Graph != g || snap.Version != 1 {
		t.Fatalf("version-1 snapshot should be the seed graph itself at version 1, got %+v", snap)
	}
}

func TestApplyDeltaAddRemove(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	m := mustMaster(t, g)
	snap, sum, err := m.ApplyDelta(Delta{
		BaseVersion: 1,
		AddNodes:    1,
		AddEdges:    [][2]int32{{2, 3}, {0, 2}},
		RemoveEdges: [][2]int32{{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mustGraph(t, 4, []graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 2}})
	if !reflect.DeepEqual(snap.Graph, want) {
		t.Fatalf("snapshot graph mismatch:\ngot  %+v\nwant %+v", snap.Graph, want)
	}
	if snap.Version != 2 || m.Version() != 2 {
		t.Fatalf("version = %d / %d, want 2", snap.Version, m.Version())
	}
	if sum.AddedEdges != 2 || sum.RemovedEdges != 1 || sum.AddedNodes != 1 {
		t.Fatalf("summary counts %+v, want 2 added, 1 removed, 1 node", sum)
	}
	if wantDirty := []int32{0, 1, 2, 3}; !reflect.DeepEqual(sum.DirtyNodes, wantDirty) {
		t.Fatalf("DirtyNodes = %v, want %v", sum.DirtyNodes, wantDirty)
	}
}

func TestApplyDeltaVersionConflict(t *testing.T) {
	m := mustMaster(t, mustGraph(t, 2, []graph.Edge{{U: 0, V: 1}}))
	_, _, err := m.ApplyDelta(Delta{BaseVersion: 5, AddEdges: [][2]int32{{1, 0}}})
	if !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("err = %v, want ErrVersionConflict", err)
	}
	if m.Version() != 1 {
		t.Fatalf("conflicting delta mutated the master to version %d", m.Version())
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
	}{
		{"negative addNodes", Delta{BaseVersion: 1, AddNodes: -1}},
		{"add out of range", Delta{BaseVersion: 1, AddEdges: [][2]int32{{0, 9}}}},
		{"add negative", Delta{BaseVersion: 1, AddEdges: [][2]int32{{-1, 0}}}},
		{"self-loop", Delta{BaseVersion: 1, AddEdges: [][2]int32{{1, 1}}}},
		{"remove out of range", Delta{BaseVersion: 1, RemoveEdges: [][2]int32{{9, 0}}}},
		{"remove node out of range", Delta{BaseVersion: 1, RemoveNodes: []int32{7}}},
	}
	for _, tt := range cases {
		m := mustMaster(t, mustGraph(t, 2, []graph.Edge{{U: 0, V: 1}}))
		_, _, err := m.ApplyDelta(tt.d)
		if !errors.Is(err, ErrInvalidDelta) {
			t.Errorf("%s: err = %v, want ErrInvalidDelta", tt.name, err)
		}
		if m.Version() != 1 {
			t.Errorf("%s: invalid delta mutated the master", tt.name)
		}
	}
}

func TestApplyDeltaNoOpsAreNotDirty(t *testing.T) {
	m := mustMaster(t, mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}}))
	_, sum, err := m.ApplyDelta(Delta{
		BaseVersion: 1,
		AddEdges:    [][2]int32{{0, 1}}, // already present
		RemoveEdges: [][2]int32{{1, 2}}, // absent
		RemoveNodes: []int32{2},         // already isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.DirtyNodes) != 0 {
		t.Fatalf("DirtyNodes = %v, want none (all operations were no-ops)", sum.DirtyNodes)
	}
	if sum.RedundantAdds != 1 || sum.MissingRemoves != 1 || sum.AddedEdges != 0 || sum.RemovedEdges != 0 {
		t.Fatalf("summary %+v, want 1 redundant add, 1 missing remove, nothing realized", sum)
	}
}

func TestRemoveNodeIsolates(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 1}, {U: 1, V: 3}})
	m := mustMaster(t, g)
	snap, sum, err := m.ApplyDelta(Delta{BaseVersion: 1, RemoveNodes: []int32{1}})
	if err != nil {
		t.Fatal(err)
	}
	want := mustGraph(t, 4, nil)
	_ = want
	if snap.Graph.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4 (removal isolates, never renumbers)", snap.Graph.NumNodes())
	}
	if snap.Graph.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", snap.Graph.NumEdges())
	}
	if sum.RemovedEdges != 4 {
		t.Fatalf("RemovedEdges = %d, want 4", sum.RemovedEdges)
	}
	if wantDirty := []int32{0, 1, 2, 3}; !reflect.DeepEqual(sum.DirtyNodes, wantDirty) {
		t.Fatalf("DirtyNodes = %v, want %v", sum.DirtyNodes, wantDirty)
	}
}

func TestRemoveThenReAddNetsToAdd(t *testing.T) {
	m := mustMaster(t, mustGraph(t, 2, []graph.Edge{{U: 0, V: 1}}))
	snap, sum, err := m.ApplyDelta(Delta{
		BaseVersion: 1,
		RemoveEdges: [][2]int32{{0, 1}},
		AddEdges:    [][2]int32{{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Graph.HasEdge(0, 1) {
		t.Fatal("edge (0,1) missing: removals must apply before adds")
	}
	if sum.RemovedEdges != 1 || sum.AddedEdges != 1 {
		t.Fatalf("summary %+v, want both the remove and the add realized", sum)
	}
}

func TestSnapshotsAreImmutable(t *testing.T) {
	m := mustMaster(t, mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}}))
	s1 := m.Snapshot()
	if _, _, err := m.ApplyDelta(Delta{BaseVersion: 1, AddEdges: [][2]int32{{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	s2 := m.Snapshot()
	if _, _, err := m.ApplyDelta(Delta{BaseVersion: 2, RemoveEdges: [][2]int32{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Graph, mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})) {
		t.Fatal("version-1 snapshot mutated by later deltas")
	}
	if !reflect.DeepEqual(s2.Graph, mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})) {
		t.Fatal("version-2 snapshot mutated by later deltas")
	}
}

func TestDirtySince(t *testing.T) {
	m := mustMaster(t, mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}))
	if _, _, err := m.ApplyDelta(Delta{BaseVersion: 1, RemoveEdges: [][2]int32{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ApplyDelta(Delta{BaseVersion: 2, AddEdges: [][2]int32{{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	got, err := m.DirtySince(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{0, 1, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("DirtySince(1) = %v, want %v", got, want)
	}
	got, err = m.DirtySince(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("DirtySince(2) = %v, want %v", got, want)
	}
	if got, err = m.DirtySince(3); err != nil || got != nil {
		t.Fatalf("DirtySince(current) = %v, %v; want nil, nil", got, err)
	}
	if _, err := m.DirtySince(0); err == nil {
		t.Fatal("DirtySince(0) should fail")
	}
	if _, err := m.DirtySince(9); err == nil {
		t.Fatal("DirtySince(future) should fail")
	}
}

// Differential test: a random delta stream applied through the master must
// match a Builder rebuild from the tracked edge set at every version.
func TestMasterMatchesRebuildOracle(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 4}})
	m := mustMaster(t, g)
	deltas, err := GenerateStream(g, 40, 99, StreamConfig{RemoveNodeEvery: 11})
	if err != nil {
		t.Fatal(err)
	}
	edges := make(map[graph.Edge]bool)
	for _, e := range g.Edges() {
		edges[e] = true
	}
	n := g.NumNodes()
	for i, sd := range deltas {
		snap, _, err := m.ApplyDelta(sd.Delta)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		n += sd.AddNodes
		for _, r := range sd.RemoveNodes {
			for e := range edges {
				if e.U == r || e.V == r {
					delete(edges, e)
				}
			}
		}
		for _, e := range sd.RemoveEdges {
			delete(edges, graph.Edge{U: e[0], V: e[1]})
		}
		for _, e := range sd.AddEdges {
			edges[graph.Edge{U: e[0], V: e[1]}] = true
		}
		b := graph.NewBuilder(n)
		for e := range edges {
			b.AddEdge(e.U, e.V)
		}
		want, err := b.Build()
		if err != nil {
			t.Fatalf("batch %d: oracle build: %v", i, err)
		}
		if !reflect.DeepEqual(snap.Graph, want) {
			t.Fatalf("batch %d: snapshot diverged from rebuild oracle", i)
		}
	}
}

// Concurrent writers and readers: conflicts are expected (only one writer
// can win each version), corruption and races are not. Run with -race.
func TestConcurrentApplyAndSnapshot(t *testing.T) {
	m := mustMaster(t, mustGraph(t, 8, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := rng.New(uint64(w) + 1)
			for i := 0; i < 50; i++ {
				d := Delta{
					BaseVersion: m.Version(),
					AddEdges:    [][2]int32{{src.Int32n(8), src.Int32n(8)}},
				}
				if d.AddEdges[0][0] == d.AddEdges[0][1] {
					continue
				}
				_, _, err := m.ApplyDelta(d)
				if err != nil && !errors.Is(err, ErrVersionConflict) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				snap := m.Snapshot()
				if snap.Graph.NumNodes() != 8 {
					t.Errorf("worker %d: snapshot corrupt", w)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestGenerateStreamDeterministic(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	a, err := GenerateStream(g, 20, 7, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(g, 20, 7, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c, err := GenerateStream(g, 20, 8, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	if a[0].Time != "2026-01-01T00:00:00Z" || a[1].Time != "2026-01-01T00:00:01Z" {
		t.Fatalf("timestamps %q, %q: want fixed-epoch one-second steps", a[0].Time, a[1].Time)
	}
}

func TestGenerateStreamAppliesCleanly(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	deltas, err := GenerateStream(g, 30, 3, StreamConfig{RemoveNodeEvery: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 30 {
		t.Fatalf("len = %d, want 30", len(deltas))
	}
	m := mustMaster(t, g)
	for i, sd := range deltas {
		if sd.BaseVersion != uint64(i+1) {
			t.Fatalf("batch %d BaseVersion = %d, want %d", i, sd.BaseVersion, i+1)
		}
		if sd.Empty() {
			t.Fatalf("batch %d is empty", i)
		}
		if _, _, err := m.ApplyDelta(sd.Delta); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}
