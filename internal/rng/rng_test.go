package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	// The all-zero xoshiro state is a fixed point; seeding via SplitMix64
	// must avoid it even for seed 0.
	var nonzero bool
	for i := 0; i < 16; i++ {
		if s.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("seed 0 produced a stuck all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams matched on %d of 100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt32nRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 10000; i++ {
		v := s.Int32n(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Int32n(17) = %d out of range", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square check at a loose threshold: 10 buckets, 100k draws.
	const buckets, draws = 10, 100000
	s := New(99)
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; p=0.001 critical value is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square = %.2f exceeds 27.88; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(8)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(10)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	seen := make(map[int]bool)
	for _, x := range xs {
		got += x
		seen[x] = true
	}
	if got != sum || len(seen) != len(xs) {
		t.Fatalf("Shuffle corrupted slice: %v", xs)
	}
}

func TestSampleInt32Distinct(t *testing.T) {
	s := New(11)
	if err := quick.Check(func(rawN, rawK uint8) bool {
		n := int32(rawN%200) + 1
		k := int32(rawK) % (n + 1)
		sample := s.SampleInt32(n, k)
		if int32(len(sample)) != k {
			return false
		}
		seen := make(map[int32]bool, k)
		for _, v := range sample {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleInt32Full(t *testing.T) {
	s := New(12)
	sample := s.SampleInt32(5, 5)
	seen := make(map[int32]bool)
	for _, v := range sample {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("SampleInt32(5,5) = %v does not cover [0,5)", sample)
	}
}

func TestSampleInt32Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInt32(2, 3) did not panic")
		}
	}()
	New(1).SampleInt32(2, 3)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Intn(1000)
	}
	_ = sink
}
