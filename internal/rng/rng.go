// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulators and generators.
//
// Reproducibility is a first-class requirement for this library: every
// Monte-Carlo experiment in the paper reproduction must be re-runnable
// bit-for-bit from a seed. The standard library's global math/rand source is
// shared mutable state, so instead each simulation owns an independent
// *rng.Source. Sources are splittable: Split derives a statistically
// independent child stream, which lets a driver hand one stream to each
// Monte-Carlo sample (or each goroutine) without coordination.
//
// The generator is xoshiro256** seeded through SplitMix64, the construction
// recommended by Blackman & Vigna. It is not cryptographically secure and
// must never be used for security purposes.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** random number generator.
// The zero value is not usable; construct Sources with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded deterministically from seed.
// Distinct seeds yield independent-looking streams; the same seed always
// yields the same stream.
func New(seed uint64) *Source {
	// Run the seed through SplitMix64 four times to fill the state, as
	// recommended by the xoshiro authors. This also handles seed == 0,
	// which would otherwise be a forbidden all-zero state.
	var src Source
	sm := seed
	src.s0 = splitMix64(&sm)
	src.s1 = splitMix64(&sm)
	src.s2 = splitMix64(&sm)
	src.s3 = splitMix64(&sm)
	return &src
}

// splitMix64 advances the SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s1*5, 7) * 9

	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = bits.RotateLeft64(s.s3, 45)

	return result
}

// Split derives a new Source whose stream is statistically independent of
// the parent's. The parent stream advances by one draw.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.boundedUint64(uint64(n)))
}

// Int32n returns a uniformly distributed int32 in [0, n). It panics if n <= 0.
func (s *Source) Int32n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int32n called with n <= 0")
	}
	return int32(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless method with rejection to remove modulo bias.
func (s *Source) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), bound)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	// Use the top 53 bits for a uniform dyadic rational in [0, 1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. Values p <= 0 always return false
// and p >= 1 always return true.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, following the Fisher-Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// SampleInt32 returns k distinct values drawn uniformly from [0, n) in
// selection order. It panics if k > n or either argument is negative.
// The cost is O(k) expected time using Floyd's algorithm.
func (s *Source) SampleInt32(n, k int32) []int32 {
	if k < 0 || n < 0 || k > n {
		panic("rng: SampleInt32 requires 0 <= k <= n")
	}
	chosen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Int32n(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
