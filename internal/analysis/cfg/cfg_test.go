package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// build parses a function body and returns its CFG.
func build(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachable returns the set of blocks reachable from Entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// describe renders the reachable graph shape for golden comparisons:
// each block as "i:[kinds] -> succIndexes", sorted by index.
func describe(c *CFG) string {
	reach := reachable(c)
	var lines []string
	for _, b := range c.Blocks {
		if !reach[b] {
			continue
		}
		var kinds []string
		for _, n := range b.Nodes {
			kinds = append(kinds, fmt.Sprintf("%T", n))
		}
		var succs []int
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		lines = append(lines, fmt.Sprintf("%d:%s->%v", b.Index, strings.Join(kinds, ","), succs))
	}
	return strings.Join(lines, "\n")
}

func TestStraightLine(t *testing.T) {
	c := build(t, "x := 1\n_ = x")
	if len(c.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should fall through to exit, got %v", c.Entry.Succs)
	}
	if len(c.Exit.Preds) != 1 || c.Exit.Preds[0] != c.Entry {
		t.Fatalf("exit preds wrong: %v", c.Exit.Preds)
	}
}

func TestIfElse(t *testing.T) {
	c := build(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// Entry(assign, cond) -> then, else; both -> after -> exit.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("cond block succs = %d, want 2", len(c.Entry.Succs))
	}
	then, els := c.Entry.Succs[0], c.Entry.Succs[1]
	if len(then.Succs) != 1 || len(els.Succs) != 1 || then.Succs[0] != els.Succs[0] {
		t.Fatalf("then/else must rejoin at one after block")
	}
	after := then.Succs[0]
	if len(after.Succs) != 1 || after.Succs[0] != c.Exit {
		t.Fatalf("after should reach exit")
	}
}

func TestIfWithoutElse(t *testing.T) {
	c := build(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	// Cond has two succs: then and after (the no-else edge).
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2", len(c.Entry.Succs))
	}
}

func TestReturnTerminates(t *testing.T) {
	c := build(t, `
x := 1
if x > 0 {
	return
}
_ = x`)
	reach := reachable(c)
	if !reach[c.Exit] {
		t.Fatalf("exit unreachable")
	}
	// The then block's only succ is exit.
	var thenBlock *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				thenBlock = b
			}
		}
	}
	if thenBlock == nil {
		t.Fatalf("no block holds the return")
	}
	if len(thenBlock.Succs) != 1 || thenBlock.Succs[0] != c.Exit {
		t.Fatalf("return block must edge only to exit, got %v", thenBlock.Succs)
	}
}

func TestForLoop(t *testing.T) {
	c := build(t, `
for i := 0; i < 3; i++ {
	_ = i
}
x := 1
_ = x`)
	// Find the cond block (holds the BinaryExpr): succs = body + after.
	var cond *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.BinaryExpr); ok {
				cond = b
			}
		}
	}
	if cond == nil {
		t.Fatalf("no cond block")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2 (body, after)", len(cond.Succs))
	}
	// The loop must contain a back edge: cond reachable from its own succs.
	reachFromBody := map[*Block]bool{}
	work := []*Block{cond.Succs[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if reachFromBody[b] {
			continue
		}
		reachFromBody[b] = true
		work = append(work, b.Succs...)
	}
	if !reachFromBody[cond] {
		t.Fatalf("no back edge to loop condition")
	}
}

func TestForBreakContinue(t *testing.T) {
	c := build(t, `
for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	if i == 2 {
		break
	}
	_ = i
}
_ = 1`)
	reach := reachable(c)
	if !reach[c.Exit] {
		t.Fatalf("exit unreachable")
	}
	// Every break/continue block ends with exactly one successor.
	for _, b := range c.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && (br.Tok == token.BREAK || br.Tok == token.CONTINUE) {
				if len(b.Succs) != 1 {
					t.Fatalf("%v block has %d succs, want 1", br.Tok, len(b.Succs))
				}
			}
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	c := build(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			break outer
		}
	}
}
_ = 1`)
	reach := reachable(c)
	if !reach[c.Exit] {
		t.Fatalf("exit unreachable after labeled break")
	}
	// The break-outer block must not edge back into either loop head: its
	// one successor must reach exit without passing a RangeHead/BinaryExpr
	// cond of the outer loop... simplest check: its succ eventually reaches
	// the trailing statement block (the one holding `_ = 1`).
	var brk *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK {
				brk = b
			}
		}
	}
	if brk == nil || len(brk.Succs) != 1 {
		t.Fatalf("break block missing or wrong succs")
	}
}

func TestRange(t *testing.T) {
	c := build(t, `
xs := []int{1, 2}
for _, x := range xs {
	_ = x
}
_ = 1`)
	var head *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*RangeHead); ok {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no RangeHead block")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head succs = %d, want 2 (body, after)", len(head.Succs))
	}
	// Body loops back to head.
	body := head.Succs[0]
	if len(body.Succs) != 1 || body.Succs[0] != head {
		t.Fatalf("range body should edge back to head, got %v", body.Succs)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	c := build(t, `
x := 1
switch x {
case 1:
	x = 2
case 2:
	x = 3
}
_ = x`)
	// Head has 3 succs: two clauses + the no-default edge to after.
	if len(c.Entry.Succs) != 3 {
		t.Fatalf("switch head succs = %d, want 3", len(c.Entry.Succs))
	}
}

func TestSwitchFallthrough(t *testing.T) {
	c := build(t, `
x := 1
switch x {
case 1:
	x = 2
	fallthrough
case 2:
	x = 3
default:
	x = 4
}
_ = x`)
	// With a default, head has exactly 3 succs (the clauses).
	if len(c.Entry.Succs) != 3 {
		t.Fatalf("switch head succs = %d, want 3", len(c.Entry.Succs))
	}
	// The fallthrough clause's block edges to the next clause block, not
	// to after: find the block containing the FALLTHROUGH branch.
	var ft *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = b
			}
		}
	}
	if ft == nil {
		t.Fatalf("no fallthrough block")
	}
	if len(ft.Succs) != 1 || ft.Succs[0] != c.Entry.Succs[1] {
		t.Fatalf("fallthrough must edge to the next clause block")
	}
}

func TestSelect(t *testing.T) {
	c := build(t, `
ch := make(chan int)
done := make(chan struct{})
select {
case v := <-ch:
	_ = v
case <-done:
}
_ = 1`)
	var head *SelectHead
	var headBlock *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if sh, ok := n.(*SelectHead); ok {
				head, headBlock = sh, b
			}
		}
	}
	if head == nil {
		t.Fatalf("no SelectHead")
	}
	if !head.Blocking() {
		t.Fatalf("select without default must be Blocking")
	}
	if len(headBlock.Succs) != 2 {
		t.Fatalf("select head succs = %d, want 2", len(headBlock.Succs))
	}
	// Each clause block starts with a CommHead.
	for _, s := range headBlock.Succs {
		if len(s.Nodes) == 0 {
			t.Fatalf("clause block empty")
		}
		if _, ok := s.Nodes[0].(*CommHead); !ok {
			t.Fatalf("clause block does not start with CommHead: %T", s.Nodes[0])
		}
	}
}

func TestSelectWithDefault(t *testing.T) {
	c := build(t, `
ch := make(chan int)
select {
case <-ch:
default:
}
_ = 1`)
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if sh, ok := n.(*SelectHead); ok {
				if sh.Blocking() {
					t.Fatalf("select with default must be non-Blocking")
				}
				return
			}
		}
	}
	t.Fatalf("no SelectHead")
}

func TestPanicTerminates(t *testing.T) {
	c := build(t, `
x := 1
if x > 0 {
	panic("boom")
}
_ = x`)
	var pb *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						pb = b
					}
				}
			}
		}
	}
	if pb == nil {
		t.Fatalf("no panic block")
	}
	if len(pb.Succs) != 1 || pb.Succs[0] != c.Exit {
		t.Fatalf("panic block must edge only to exit, got %d succs", len(pb.Succs))
	}
}

func TestOsExitTerminates(t *testing.T) {
	src := `package p
import "os"
func f(x int) {
	if x > 0 {
		os.Exit(1)
	}
	_ = x
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[1].(*ast.FuncDecl)
	c := New(fn.Body)
	var eb *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Exit" {
						eb = b
					}
				}
			}
		}
	}
	if eb == nil {
		t.Fatalf("no os.Exit block")
	}
	if len(eb.Succs) != 1 || eb.Succs[0] != c.Exit {
		t.Fatalf("os.Exit block must edge only to exit")
	}
}

func TestDefersRecorded(t *testing.T) {
	c := build(t, `
defer println("a")
x := 1
if x > 0 {
	defer println("b")
}
_ = x`)
	if len(c.Defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(c.Defers))
	}
}

func TestGoto(t *testing.T) {
	c := build(t, `
x := 0
loop:
x++
if x < 3 {
	goto loop
}
_ = x`)
	reach := reachable(c)
	if !reach[c.Exit] {
		t.Fatalf("exit unreachable")
	}
	// The goto block must edge to the labeled block (which holds x++).
	var gotoBlock, labelBlock *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				gotoBlock = b
			}
			if inc, ok := n.(*ast.IncDecStmt); ok && inc.Tok == token.INC {
				labelBlock = b
			}
		}
	}
	if gotoBlock == nil || labelBlock == nil {
		t.Fatalf("missing goto or label block")
	}
	if len(gotoBlock.Succs) != 1 || gotoBlock.Succs[0] != labelBlock {
		t.Fatalf("goto must edge to label block")
	}
}

func TestTypeSwitch(t *testing.T) {
	c := build(t, `
var v any = 1
switch v.(type) {
case int:
	_ = 1
case string:
	_ = 2
default:
	_ = 3
}
_ = v`)
	if len(c.Entry.Succs) != 3 {
		t.Fatalf("type-switch head succs = %d, want 3", len(c.Entry.Succs))
	}
}

func TestPredsConsistent(t *testing.T) {
	c := build(t, `
for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	select {
	case <-make(chan int):
	default:
	}
}
_ = 1`)
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("block %d -> %d edge missing from preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("block %d pred %d has no matching succ", b.Index, p.Index)
			}
		}
	}
	// Shape is deterministic across builds.
	c2 := build(t, `
for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	select {
	case <-make(chan int):
	default:
	}
}
_ = 1`)
	if describe(c) != describe(c2) {
		t.Fatalf("CFG shape not deterministic:\n%s\n---\n%s", describe(c), describe(c2))
	}
}
