// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, the substrate for the dataflow analyses in
// internal/analysis/dataflow and the concurrency analyzers built on them.
//
// A CFG is a list of basic blocks. Each block holds the statements and
// control expressions that execute straight-line, in order, and edges to
// its successors. Structured control flow (if/for/range/switch/select),
// labeled break/continue, goto and fallthrough are all lowered to edges; a
// return statement (or a direct call to panic, os.Exit or runtime.Goexit)
// gets an edge to the distinguished Exit block.
//
// Three wrapper node types stand in for statements whose AST form nests
// sub-statements that live in other blocks: RangeHead (the per-iteration
// loop head of a range statement, without its body), SelectHead (the
// blocking point of a select, without its clauses) and CommHead (one
// select clause's communication, without the clause body). Analyses that
// walk Block.Nodes must treat these wrappers — and must prune *ast.FuncLit
// subtrees, whose statements execute on some other activation, not on this
// function's paths.
//
// Defer statements appear both as ordinary nodes (their registration
// point) and in CFG.Defers (for analyses that model the deferred calls
// running at function exit). The graph does not add per-call panic edges:
// an analysis that needs "any call may panic" precision must model it
// itself — see DESIGN.md §12 for the soundness trade-offs.
package cfg

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every basic block in deterministic creation order;
	// Blocks[0] is Entry and Blocks[1] is Exit.
	Blocks []*Block
	// Entry is where execution starts; it has no predecessors (unless a
	// label at the top of the function is the target of a back goto).
	Entry *Block
	// Exit is the single synthetic exit; every return, panic and
	// fall-off-the-end path reaches it.
	Exit *Block
	// Defers lists the function's defer statements in registration order.
	// The deferred calls run at Exit, in reverse order, on the paths that
	// executed the registration.
	Defers []*ast.DeferStmt
}

// Block is one basic block: straight-line nodes plus control-flow edges.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes holds the block's statements and control expressions in
	// execution order. Entries are ordinary ast.Stmt/ast.Expr values or
	// the RangeHead/SelectHead/CommHead wrappers.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// RangeHead marks the loop-head step of a range statement: X is evaluated
// once, and the key/value variables are (re)assigned before each
// iteration. The loop body's statements live in their own blocks.
type RangeHead struct{ Range *ast.RangeStmt }

// Pos implements ast.Node.
func (h *RangeHead) Pos() token.Pos { return h.Range.Pos() }

// End implements ast.Node.
func (h *RangeHead) End() token.Pos { return h.Range.X.End() }

// SelectHead marks the blocking point of a select statement. The
// communication of each clause is a CommHead in that clause's block.
type SelectHead struct{ Select *ast.SelectStmt }

// Pos implements ast.Node.
func (h *SelectHead) Pos() token.Pos { return h.Select.Pos() }

// End implements ast.Node.
func (h *SelectHead) End() token.Pos { return h.Select.Select + token.Pos(len("select")) }

// Blocking reports whether the select has no default clause, i.e. whether
// reaching it blocks until some communication is ready.
func (h *SelectHead) Blocking() bool {
	for _, clause := range h.Select.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// CommHead marks one select clause's communication operation (nil for the
// default clause). The clause body's statements follow as ordinary nodes.
type CommHead struct{ Clause *ast.CommClause }

// Pos implements ast.Node.
func (h *CommHead) Pos() token.Pos { return h.Clause.Pos() }

// End implements ast.Node.
func (h *CommHead) End() token.Pos {
	if h.Clause.Comm != nil {
		return h.Clause.Comm.End()
	}
	return h.Clause.Colon
}

// New builds the CFG of one function body (a FuncDecl.Body or
// FuncLit.Body). The body is not modified.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{
		c:      &CFG{},
		labels: map[string]*Block{},
	}
	b.c.Entry = b.newBlock()
	b.c.Exit = b.newBlock()
	b.cur = b.c.Entry
	b.stmt(body)
	if b.cur != nil {
		b.edge(b.cur, b.c.Exit)
	}
	for _, blk := range b.c.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.c
}

// branchTarget records where break and continue jump for one enclosing
// breakable statement. continueTo is nil for switch and select.
type branchTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	c       *CFG
	cur     *Block // nil while the current point is unreachable
	targets []branchTarget
	labels  map[string]*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// ensure returns the current block, starting a fresh (unreachable) one
// after a terminator so later statements still have a home.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// jump moves the current point to blk, adding a fall-through edge when the
// current point is reachable.
func (b *builder) jump(blk *Block) {
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

// labelBlock returns (creating on first use) the block a label names, so
// forward gotos can target labels not yet visited.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findTarget resolves a break or continue: the innermost target when label
// is empty, the labeled one otherwise.
func (b *builder) findTarget(label string, wantContinue bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if wantContinue {
			if t.continueTo == nil {
				continue
			}
			return t.continueTo
		}
		return t.breakTo
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.jump(b.labelBlock(s.Label.Name))
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.forStmt(inner, s.Label.Name)
		case *ast.RangeStmt:
			b.rangeStmt(inner, s.Label.Name)
		case *ast.SwitchStmt:
			b.switchStmt(inner.Init, inner.Tag, nil, inner.Body, s.Label.Name)
		case *ast.TypeSwitchStmt:
			b.switchStmt(inner.Init, nil, inner.Assign, inner.Body, s.Label.Name)
		case *ast.SelectStmt:
			b.selectStmt(inner, s.Label.Name)
		default:
			b.stmt(inner)
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.c.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK, token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			b.add(s)
			if to := b.findTarget(label, s.Tok == token.CONTINUE); to != nil {
				b.edge(b.cur, to)
			}
			b.cur = nil
		case token.GOTO:
			b.add(s)
			b.edge(b.cur, b.labelBlock(s.Label.Name))
			b.cur = nil
		case token.FALLTHROUGH:
			// The switch builder wires the edge to the next clause.
			b.add(s)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock()
			b.edge(cond, els)
		} else {
			b.edge(cond, after)
		}
		b.cur = then
		b.stmt(s.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.cur = after
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, "")
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.DeferStmt:
		b.c.Defers = append(b.c.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.edge(b.cur, b.c.Exit)
			b.cur = nil
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assignments, declarations, sends, inc/dec, go statements.
		b.add(s)
	}
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.newBlock()
	b.jump(cond)
	if s.Cond != nil {
		cond.Nodes = append(cond.Nodes, s.Cond)
	}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(cond, body)
	if s.Cond != nil {
		b.edge(cond, after)
	}
	continueTo := cond
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}
	b.targets = append(b.targets, branchTarget{label, after, continueTo})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, continueTo)
	}
	b.targets = b.targets[:len(b.targets)-1]
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		if b.cur != nil {
			b.edge(b.cur, cond)
		}
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.jump(head)
	head.Nodes = append(head.Nodes, &RangeHead{s})
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.targets = append(b.targets, branchTarget{label, after, head})
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// switchStmt lowers both expression and type switches: tag holds the
// switch expression (nil for type switches), assign the x := y.(type)
// statement (nil for expression switches).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.ensure()
	after := b.newBlock()
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.targets = append(b.targets, branchTarget{label, after, nil})
	for i, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			if endsWithFallthrough(cc.Body) && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.ensure()
	head.Nodes = append(head.Nodes, &SelectHead{s})
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label, after, nil})
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		blk.Nodes = append(blk.Nodes, &CommHead{cc})
		b.cur = blk
		for _, st := range cc.Body {
			b.stmt(st)
		}
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// endsWithFallthrough reports whether a case body's last statement is
// fallthrough (possibly labeled).
func endsWithFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	last := body[len(body)-1]
	for {
		ls, ok := last.(*ast.LabeledStmt)
		if !ok {
			break
		}
		last = ls.Stmt
	}
	br, ok := last.(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall reports whether expr is a direct call that never
// returns: panic(...), os.Exit(...), runtime.Goexit(). The check is
// syntactic; shadowing these names defeats it (documented unsoundness).
func isTerminatingCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}
