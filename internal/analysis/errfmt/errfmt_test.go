package errfmt_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/errfmt"
)

func TestDiagnostics(t *testing.T) {
	analysistest.Run(t, "testdata", "a", errfmt.Analyzer)
}

// TestMainExempt checks that command (package main) messages need no
// package prefix.
func TestMainExempt(t *testing.T) {
	analysistest.Run(t, "testdata", "m", errfmt.Analyzer)
}
