// Command m shows the main-package exemption: binaries report errors to
// the operator directly, so no package prefix is required.
package main

import "errors"

func run() error {
	return errors.New("plain operator-facing message")
}
