// Package a exercises the errfmt analyzer: constructor messages carry the
// "a: " package prefix and propagation sites wrap with %w.
package a

import (
	"errors"
	"fmt"
)

var errBase = errors.New("a: base failure")

func missingPrefix() error {
	return errors.New("bad thing happened") // want `error message "bad thing happened" must start with "a: " \(or lead with %w to inherit the wrapped prefix\)`
}

func unwrappable(err error) error {
	return fmt.Errorf("a: compute failed: %v", err) // want `error value formatted with %v/%s; use %w so errors\.Is and errors\.As can unwrap it`
}

// wrapped is the sanctioned propagation shape.
func wrapped(err error) error {
	return fmt.Errorf("a: compute failed: %w", err)
}

// inherit leads with %w, taking the wrapped error's prefix.
func inherit(err error) error {
	return fmt.Errorf("%w: while computing", err)
}

// dynamic messages are out of scope: only compile-time constants are
// checked.
func dynamic(msg string) error {
	return errors.New(msg)
}

// suppressedCase documents a deliberate exception.
func suppressedCase() error {
	//lint:ignore errfmt sentinel text is part of the published file format
	return errors.New("MAGIC-HEADER-V1")
}
