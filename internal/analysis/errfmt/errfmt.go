// Package errfmt enforces the repo's error-string conventions, normalized
// in PR 1:
//
//   - in library (non-main) packages, every errors.New / fmt.Errorf message
//     must carry the "pkg: " prefix so an error's origin is readable from
//     its text alone; a message may instead begin with %w, inheriting the
//     prefix of the wrapped error;
//   - everywhere, a fmt.Errorf that receives an error argument must use %w
//     (not %v or %s) so errors.Is / errors.As can see the cause through the
//     wrap.
//
// Test files are exempt: test-only errors are assertion scaffolding, not
// part of the error chain the tools inspect.
package errfmt

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"lcrb/internal/analysis"
)

// Analyzer is the errfmt pass.
var Analyzer = &analysis.Analyzer{
	Name: "errfmt",
	Doc:  "require 'pkg: ' prefixes on error constructors and %w at propagation sites",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			var isErrorf bool
			switch {
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				isErrorf = true
			default:
				return true
			}

			msg, haveMsg := constantString(pass, call.Args[0])
			if haveMsg && pass.Pkg.Name() != "main" {
				prefix := pass.Pkg.Name() + ": "
				if !strings.HasPrefix(msg, prefix) && !strings.HasPrefix(msg, "%w") {
					pass.Reportf(call.Args[0].Pos(), "error message %q must start with %q (or lead with %%w to inherit the wrapped prefix)", clip(msg), prefix)
				}
			}
			if isErrorf && haveMsg && !strings.Contains(msg, "%w") {
				for _, arg := range call.Args[1:] {
					t := pass.TypesInfo.TypeOf(arg)
					if t != nil && types.Implements(t, errType) {
						pass.Reportf(arg.Pos(), "error value formatted with %%v/%%s; use %%w so errors.Is and errors.As can unwrap it")
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// constantString returns expr's compile-time string value, if it has one.
func constantString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// clip shortens long messages for readable diagnostics.
func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
