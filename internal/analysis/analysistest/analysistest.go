// Package analysistest runs one analyzer over a testdata package and
// compares its diagnostics against `// want` expectations embedded in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// An expectation is a comment of the form
//
//	code() // want `regexp` `another regexp`
//
// meaning the analyzer must report, on that line, one diagnostic matching
// each regexp. Diagnostics without a matching expectation, and
// expectations without a matching diagnostic, fail the test.
package analysistest

import (
	"go/ast"
	"go/format"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/dataflow"
)

// TB is the subset of *testing.T this package needs, split out so the
// package can test itself: meta-tests substitute a recorder and assert
// that bad expectations really fail. Implementations must not return
// normally from Fatalf or Fatal — *testing.T calls runtime.Goexit, and a
// recorder must panic (the meta-tests recover).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Fatal(args ...any)
}

// Run loads the package under dir/src/<pkg>, applies a, and checks its
// diagnostics against the `// want` comments. It returns the diagnostics
// for further assertions.
func Run(t TB, dir, pkg string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset, files, diags := runAnalyzer(t, dir, pkg, a)
	checkExpectations(t, fset, files, *diags)
	return *diags
}

// RunWithSuggestedFixes is Run, then additionally applies every suggested
// fix in memory and compares each patched file against a sibling
// <name>.golden file (required for every file a fix touches).
func RunWithSuggestedFixes(t TB, dir, pkg string, a *analysis.Analyzer) {
	t.Helper()
	fset, files, diags := runAnalyzer(t, dir, pkg, a)
	checkExpectations(t, fset, files, *diags)

	type edit struct {
		start, end int
		newText    []byte
	}
	perFile := map[string][]edit{}
	for _, d := range *diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = fset.Position(te.End)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
			}
		}
	}
	if len(perFile) == 0 {
		t.Fatalf("analysistest: %s produced no suggested fixes", a.Name)
	}
	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := perFile[name]
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			src = append(src[:e.start], append(append([]byte{}, e.newText...), src[e.end:]...)...)
		}
		got, err := format.Source(src)
		if err != nil {
			t.Fatalf("analysistest: fixed %s does not parse: %v\n%s", name, err, src)
		}
		golden, err := os.ReadFile(name + ".golden")
		if err != nil {
			t.Fatalf("analysistest: missing golden file for %s: %v", name, err)
		}
		want, err := format.Source(golden)
		if err != nil {
			t.Fatalf("analysistest: golden %s.golden does not parse: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("analysistest: fixed %s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}

// runAnalyzer type-checks the testdata package and runs the analyzer,
// filtering diagnostics through lint:ignore suppression like the real
// driver does.
func runAnalyzer(t TB, dir, pkg string, a *analysis.Analyzer) (*token.FileSet, []*ast.File, *[]analysis.Diagnostic) {
	t.Helper()
	pkgDir := filepath.Join(dir, "src", pkg)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files under %s", pkgDir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", pkg, err)
	}

	diags := new([]analysis.Diagnostic)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Facts:     dataflow.NewFactStore(),
	}
	pass.Report = func(d analysis.Diagnostic) {
		for _, f := range files {
			if f.FileStart <= d.Pos && d.Pos < f.FileEnd {
				if analysis.Suppressed(fset, f, a.Name, d.Pos) {
					return
				}
				break
			}
		}
		*diags = append(*diags, d)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	// Order diagnostics by position then message so the reported sequence
	// is deterministic even when an analyzer iterates a map internally.
	sort.SliceStable(*diags, func(i, j int) bool {
		if (*diags)[i].Pos != (*diags)[j].Pos {
			return (*diags)[i].Pos < (*diags)[j].Pos
		}
		return (*diags)[i].Message < (*diags)[j].Message
	})
	return fset, files, diags
}

// expectation is one `// want` regexp, keyed to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// checkExpectations matches diagnostics against the testdata's want
// comments.
func checkExpectations(t TB, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					text, ok = strings.CutPrefix(c.Text, "//want ")
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("analysistest: bad want regexp at %s: %v", pos, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("analysistest: unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("analysistest: no diagnostic at %s:%d matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the payload of a want comment: a sequence of Go
// string literals (quoted or backquoted).
func splitQuoted(t TB, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("analysistest: unterminated want literal: %s", s)
			}
			lit = s[1 : 1+end]
			s = s[2+end:]
		case '"':
			rest := s[1:]
			end := -1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("analysistest: unterminated want literal: %s", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("analysistest: bad want literal %q: %v", s[:end+2], err)
			}
			s = s[end+2:]
		default:
			t.Fatalf("analysistest: want payload must be quoted regexps, got: %s", s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out
}
