// Meta-tests: the harness must itself be trustworthy. A want comment that
// matches nothing has to fail, suggested fixes have to be idempotent
// against their goldens, and diagnostic order has to be stable even when
// an analyzer iterates a map internally.
package analysistest_test

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/analysistest"
)

// recorder satisfies analysistest.TB, capturing failures instead of
// failing the real test. Fatalf/Fatal panic with fatalSentinel because
// the contract forbids returning normally (the real *testing.T would
// have called runtime.Goexit).
type recorder struct {
	errors []string
	fatals []string
}

type fatalSentinel struct{}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
	panic(fatalSentinel{})
}

func (r *recorder) Fatal(args ...any) {
	r.fatals = append(r.fatals, fmt.Sprint(args...))
	panic(fatalSentinel{})
}

// runRecorded runs fn, swallowing only the recorder's own fatal panic.
func runRecorded(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(fatalSentinel); !ok {
				panic(rec)
			}
		}
	}()
	fn()
}

// metaFix flags identifiers named "bad" and suggests renaming them to
// "good" — the smallest analyzer with a mechanical fix.
var metaFix = &analysis.Analyzer{
	Name: "metafix",
	Doc:  "flags identifiers named bad and renames them to good",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "bad" {
					pass.Report(analysis.Diagnostic{
						Pos:     id.Pos(),
						Message: "bad name",
						SuggestedFixes: []analysis.SuggestedFix{{
							Message:   "rename to good",
							TextEdits: []analysis.TextEdit{{Pos: id.Pos(), End: id.End(), NewText: []byte("good")}},
						}},
					})
				}
				return true
			})
		}
		return nil
	},
}

// write creates a file under dir, making parents.
func write(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWrongWantFails: a want regexp that matches no diagnostic must fail
// the run — once for the unmatched diagnostic and once for the unmet
// expectation.
func TestWrongWantFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "src/a/a.go", "package a\n\nvar bad = 1 // want `some other message`\n")
	rec := &recorder{}
	runRecorded(t, func() { analysistest.Run(rec, dir, "a", metaFix) })
	if len(rec.fatals) != 0 {
		t.Fatalf("unexpected fatal: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("got %d errors, want 2 (unexpected diagnostic + unmet expectation): %v", len(rec.errors), rec.errors)
	}
}

// TestMissingWantFails: a diagnostic with no want comment at all must
// fail the run.
func TestMissingWantFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "src/a/a.go", "package a\n\nvar bad = 1\n")
	rec := &recorder{}
	runRecorded(t, func() { analysistest.Run(rec, dir, "a", metaFix) })
	if len(rec.errors) != 1 {
		t.Fatalf("got %d errors, want 1 (unexpected diagnostic): %v", len(rec.errors), rec.errors)
	}
}

// TestCorrectWantPasses: the control — matching expectations record no
// failures.
func TestCorrectWantPasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "src/a/a.go", "package a\n\nvar bad = 1 // want `bad name`\n")
	rec := &recorder{}
	runRecorded(t, func() { analysistest.Run(rec, dir, "a", metaFix) })
	if len(rec.errors) != 0 || len(rec.fatals) != 0 {
		t.Fatalf("clean run recorded failures: errors=%v fatals=%v", rec.errors, rec.fatals)
	}
}

// TestGoldenFixIdempotent: applying the suggested fix must reproduce the
// golden, and running the analyzer over the golden must produce nothing —
// i.e. the fix converges in one application.
func TestGoldenFixIdempotent(t *testing.T) {
	const (
		src = "package a\n\nvar bad = 1 // want `bad name`\n"
		// The golden keeps the want comment: fixes rewrite code, not
		// expectations.
		golden = "package a\n\nvar good = 1 // want `bad name`\n"
		// The fixed point drops it: fixed code produces no diagnostics.
		fixedPoint = "package a\n\nvar good = 1\n"
	)
	dir := t.TempDir()
	write(t, dir, "src/a/a.go", src)
	write(t, dir, "src/a/a.go.golden", golden)
	rec := &recorder{}
	runRecorded(t, func() { analysistest.RunWithSuggestedFixes(rec, dir, "a", metaFix) })
	if len(rec.errors) != 0 || len(rec.fatals) != 0 {
		t.Fatalf("fix run recorded failures: errors=%v fatals=%v", rec.errors, rec.fatals)
	}

	// Second application: the golden, used as input, must be a fixed point.
	dir2 := t.TempDir()
	write(t, dir2, "src/a/a.go", fixedPoint)
	rec2 := &recorder{}
	var diags []analysis.Diagnostic
	runRecorded(t, func() { diags = analysistest.Run(rec2, dir2, "a", metaFix) })
	if len(diags) != 0 || len(rec2.errors) != 0 {
		t.Fatalf("golden is not a fixed point: diags=%v errors=%v", diags, rec2.errors)
	}
}

// mapDiag reports every package-level var, deliberately iterating an
// internal map so any ordering leak in the harness would surface.
var mapDiag = &analysis.Analyzer{
	Name: "mapdiag",
	Doc:  "reports every package-level var, via a map iteration",
	Run: func(pass *analysis.Pass) error {
		found := map[string]*ast.Ident{}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							found[name.Name] = name
						}
					}
				}
			}
		}
		for name, id := range found {
			pass.Report(analysis.Diagnostic{Pos: id.Pos(), Message: "var " + name})
		}
		return nil
	},
}

// TestDeterministicDiagnosticOrder: two runs of a map-iterating analyzer
// must yield the same diagnostic sequence, sorted by position then
// message.
func TestDeterministicDiagnosticOrder(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "src/a/a.go",
		"package a\n\nvar e, d, c, b, a = 1, 2, 3, 4, 5 // want `var e` `var d` `var c` `var b` `var a`\n")
	var first []string
	for run := 0; run < 2; run++ {
		rec := &recorder{}
		var diags []analysis.Diagnostic
		runRecorded(t, func() { diags = analysistest.Run(rec, dir, "a", mapDiag) })
		if len(rec.errors) != 0 || len(rec.fatals) != 0 {
			t.Fatalf("run %d recorded failures: errors=%v fatals=%v", run, rec.errors, rec.fatals)
		}
		got := make([]string, len(diags))
		for i, d := range diags {
			got[i] = d.Message
		}
		for i := 1; i < len(diags); i++ {
			if diags[i-1].Pos > diags[i].Pos {
				t.Fatalf("run %d: diagnostics out of position order: %v", run, got)
			}
		}
		if run == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("run lengths differ: %v vs %v", first, got)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("diagnostic order differs between runs:\nfirst:  %v\nsecond: %v", first, got)
			}
		}
	}
}
