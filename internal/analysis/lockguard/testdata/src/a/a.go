// Package a exercises the lockguard analyzer: blocking ops under a held
// mutex, locks not released on every return path, and double unlocks.
package a

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	state int
	w     io.Writer
}

// --- clean shapes ---

func (s *store) deferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *store) manualUnlockAllPaths(cond bool) int {
	s.mu.Lock()
	if cond {
		v := s.state
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// copyThenBlock copies under the lock and blocks after releasing — the
// latency-window idiom.
func (s *store) copyThenBlock(ch chan int) {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	ch <- v
}

// nonBlockingSelect holds the lock across a select with a default, which
// cannot block.
func (s *store) nonBlockingSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.state = v
	default:
	}
}

// bufferWrite holds the lock across an in-memory write, which is fine.
func (s *store) bufferWrite(buf *bytes.Buffer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(buf, "state=%d", s.state)
}

func (s *store) readLocked() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.state
}

// --- blocking under lock ---

func (s *store) sendUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- s.state // want `s\.mu is held across a channel send`
}

func (s *store) recvUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = <-ch // want `s\.mu is held across a channel receive`
}

func (s *store) selectUnderLock(ch chan int, done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `s\.mu is held across a blocking select`
	case v := <-ch:
		s.state = v
	case <-done:
	}
}

func (s *store) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `s\.mu is held across time.Sleep`
}

func (s *store) rangeChanUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range ch { // want `s\.mu is held across a range over a channel`
		s.state = v
	}
}

// writerWrite is the SSE-sink shape: Fprintf to an io.Writer that may be
// a network connection, while the mutex serializes the stream.
func (s *store) writerWrite() {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "state=%d", s.state) // want `s\.mu is held across I/O \(fmt.Fprintf to a non-buffer writer\)`
}

// emit performs the I/O; send calls it under the lock, so the callee
// summary propagates the blocking behavior to the call site.
func (s *store) emit(v int) {
	fmt.Fprintf(s.w, "v=%d", v)
}

func (s *store) send(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = v
	s.emit(v) // want `s\.mu is held across a call to emit, which may block`
}

// --- release on every path ---

func (s *store) leakOnEarlyReturn(cond bool) int {
	s.mu.Lock() // want `s\.mu is locked here but not released on every return path`
	if cond {
		return s.state
	}
	v := s.state
	s.mu.Unlock()
	return v
}

func (s *store) neverReleased() {
	s.mu.Lock() // want `s\.mu is locked here but not released on every return path`
	s.state++
}

// --- double unlock ---

func (s *store) doubleUnlock() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.mu.Unlock() // want `s\.mu unlocked twice on this path`
}
