package lockguard_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", "a", lockguard.Analyzer)
}
