// Package lockguard enforces the repo's critical-section discipline with
// a forward dataflow pass over each function's CFG: a sync.Mutex/RWMutex
// must not be held across operations that can block indefinitely, every
// lock must be released on every return path, and no path may unlock a
// mutex twice.
//
// Per mutex expression (keyed by its printed form, e.g. "s.mu"), the
// analysis tracks a small lattice: unknown < locked/unlocked < maybe
// (paths disagree). Three checks fire on the solved facts:
//
//   - blocking-under-lock: while a mutex is definitely held, the path
//     reaches a channel send or receive, a blocking select (one with no
//     default is non-blocking and exempt), a range over a channel,
//     time.Sleep, recognizable I/O (net, net/http, os file ops, or
//     fmt.Fprint* to a writer that is not an in-memory buffer), or a call
//     to a function whose exported fact says it may block;
//   - release-on-every-path: at function exit a key that is locked (or
//     locked on some path but not others) with no deferred unlock is
//     reported at its lock site — the multi-return missing
//     `defer mu.Unlock()` bug;
//   - double-unlock: an Unlock reached while the key is already
//     definitely unlocked on that path (definite only; "maybe" states
//     stay quiet to avoid false positives on correlated branches).
//
// Function literals are analyzed as functions of their own; deferred
// statements neither transition lock state (they run at exit) nor count
// as blocking on the path. Cross-function "may block" facts are computed
// per declared function and exported, so a helper that does I/O taints
// its callers' critical sections — the shape behind an SSE sink calling
// its emit helper under the mutex. Test files are exempt.
//
// Known unsoundness is documented in DESIGN.md §12: keys are syntactic,
// aliasing is invisible, and interface-typed sync.Locker values are not
// tracked.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/cfg"
	"lcrb/internal/analysis/dataflow"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "forbid blocking calls under a held mutex, unreleased locks on return paths, and double unlocks",
	Run:  run,
}

// Summary is the cross-function fact lockguard exports per function.
type Summary struct {
	// MayBlock reports that calling the function can block indefinitely:
	// its body performs channel operations, blocking selects, sleeps, or
	// recognizable I/O (transitively through local calls).
	MayBlock bool
}

// lstate is one mutex's status on a path.
type lstate uint8

const (
	stUnknown  lstate = iota // never touched
	stLocked                 // definitely held
	stUnlocked               // definitely released
	stMaybe                  // paths disagree
)

// lockFact maps mutex keys to states. Facts are immutable: transfer
// copies before writing.
type lockFact map[string]lstate

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	mayBlock := computeMayBlock(pass, decls)
	for fn, blocks := range mayBlock {
		if pass.Facts != nil {
			pass.Facts.ExportFact(fn.FullName(), Summary{MayBlock: blocks})
		}
	}

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunction(pass, n.Body, mayBlock)
				}
			case *ast.FuncLit:
				checkFunction(pass, n.Body, mayBlock)
			}
			return true
		})
	}
	return nil
}

func checkFunction(pass *analysis.Pass, body *ast.BlockStmt, mayBlock map[*types.Func]bool) {
	// Fast path: skip functions that never lock.
	locks := false
	scanPruned(body, func(n ast.Node) bool {
		if _, _, ok := lockEvent(pass, n); ok {
			locks = true
			return false
		}
		return true
	})
	if !locks {
		return
	}

	graph := cfg.New(body)

	deferred := map[string]bool{}
	for _, d := range graph.Defers {
		if key, ev, ok := lockEvent(pass, d.Call); ok && (ev == evUnlock) {
			deferred[key] = true
		}
	}

	prob := &dataflow.Problem{
		Graph:    graph,
		Dir:      dataflow.Forward,
		Boundary: lockFact{},
		Join:     joinFacts,
		Equal:    equalFacts,
		Transfer: func(blk *cfg.Block, in dataflow.Fact) dataflow.Fact {
			return transferBlock(pass, blk, in.(lockFact), mayBlock, nil)
		},
	}
	res := dataflow.Solve(prob)

	// Reporting pass: re-run each reachable block's transfer from its
	// stable input with the report hook armed. The facts cannot change, so
	// every diagnostic is emitted exactly once, in block order.
	for _, blk := range graph.Blocks {
		in := res.In[blk]
		if in == nil {
			continue
		}
		transferBlock(pass, blk, in.(lockFact), mayBlock, pass.Report)
	}

	// Exit check: a key locked on all or some paths into Exit, without a
	// deferred unlock, escapes the function still held.
	exitIn, _ := res.In[graph.Exit].(lockFact)
	if exitIn == nil {
		return
	}
	lockSites := firstLockSites(pass, body)
	keys := make([]string, 0, len(exitIn))
	for k := range exitIn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		st := exitIn[key]
		if (st == stLocked || st == stMaybe) && !deferred[key] {
			pos, ok := lockSites[key]
			if !ok {
				continue
			}
			pass.Reportf(pos, "%s is locked here but not released on every return path; consider defer %s.Unlock()", key, key)
		}
	}
}

type lockEventKind uint8

const (
	evLock lockEventKind = iota + 1
	evUnlock
)

// lockEvent matches n as recv.Lock/RLock/Unlock/RUnlock() on a
// sync.Mutex or sync.RWMutex. Read locks get a "/R" key suffix so the
// two lock classes are tracked independently.
func lockEvent(pass *analysis.Pass, n ast.Node) (key string, kind lockEventKind, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	var k lockEventKind
	suffix := ""
	switch sel.Sel.Name {
	case "Lock":
		k = evLock
	case "Unlock":
		k = evUnlock
	case "RLock":
		k, suffix = evLock, "/R"
	case "RUnlock":
		k, suffix = evUnlock, "/R"
	default:
		return "", 0, false
	}
	tv, found := pass.TypesInfo.Types[sel.X]
	if !found || !isMutex(tv.Type) {
		return "", 0, false
	}
	return types.ExprString(sel.X) + suffix, k, true
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (or pointer).
func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// transferBlock applies one block's events to the incoming fact. When
// report is non-nil it also emits the blocking-under-lock and
// double-unlock diagnostics for this block (the reporting pass).
func transferBlock(pass *analysis.Pass, blk *cfg.Block, in lockFact, mayBlock map[*types.Func]bool, report func(analysis.Diagnostic)) lockFact {
	cur := in
	cloned := false
	set := func(key string, st lstate) {
		if !cloned {
			next := make(lockFact, len(cur)+1)
			for k, v := range cur {
				next[k] = v
			}
			cur, cloned = next, true
		}
		cur[key] = st
	}
	reportf := func(pos token.Pos, format string, args ...any) {
		if report != nil {
			report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
		}
	}

	for _, node := range blk.Nodes {
		switch node.(type) {
		case *ast.DeferStmt:
			// Deferred calls run at exit: no transitions, no blocking on
			// this path. The exit check accounts for deferred unlocks.
			continue
		case *ast.GoStmt:
			// The launch itself does not block this path.
			continue
		}

		// Blocking check first, against the state before this node's own
		// transitions (a Lock statement is not "under" itself).
		if desc, pos, blocking := blockingDesc(pass, node, mayBlock); blocking {
			held := heldKeys(cur)
			if len(held) > 0 {
				reportf(pos, "%s is held across %s; shrink the critical section or hand off outside the lock", held[0], desc)
			}
		}

		// Then apply this node's lock events in source order.
		events(pass, node, func(key string, kind lockEventKind, pos token.Pos) {
			switch kind {
			case evLock:
				set(key, stLocked)
			case evUnlock:
				if cur[key] == stUnlocked {
					reportf(pos, "%s unlocked twice on this path", key)
				}
				set(key, stUnlocked)
			}
		})
	}
	return cur
}

// events walks one CFG node (pruning function literals) and invokes f for
// each lock event in source order. Wrapper nodes carry no lock events.
func events(pass *analysis.Pass, node ast.Node, f func(key string, kind lockEventKind, pos token.Pos)) {
	switch node.(type) {
	case *cfg.RangeHead, *cfg.SelectHead, *cfg.CommHead:
		return
	}
	scanPruned(node, func(n ast.Node) bool {
		if key, kind, ok := lockEvent(pass, n); ok {
			f(key, kind, n.Pos())
		}
		return true
	})
}

// heldKeys returns the definitely-held mutex keys in lexical order.
func heldKeys(f lockFact) []string {
	var out []string
	for k, st := range f {
		if st == stLocked {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// blockingDesc reports whether executing node can block indefinitely and
// describes how. The first blocking construct in source order wins.
func blockingDesc(pass *analysis.Pass, node ast.Node, mayBlock map[*types.Func]bool) (string, token.Pos, bool) {
	switch n := node.(type) {
	case *cfg.RangeHead:
		if isChanExpr(pass, n.Range.X) {
			return "a range over a channel", n.Pos(), true
		}
		return "", token.NoPos, false
	case *cfg.SelectHead:
		if n.Blocking() {
			return "a blocking select", n.Pos(), true
		}
		return "", token.NoPos, false
	case *cfg.CommHead:
		// The wait happened at the SelectHead; executing a ready clause
		// does not block.
		return "", token.NoPos, false
	}

	var desc string
	var at token.Pos
	scanPruned(node, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			desc, at = "a channel send", n.Pos()
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				desc, at = "a channel receive", n.Pos()
			}
		case *ast.CallExpr:
			if d, ok := callBlocks(pass, n, mayBlock); ok {
				desc, at = d, n.Pos()
			}
		}
		return desc == ""
	})
	return desc, at, desc != ""
}

// callBlocks classifies one call as blocking: time.Sleep, recognizable
// I/O, or a callee whose fact says it may block.
func callBlocks(pass *analysis.Pass, call *ast.CallExpr, mayBlock map[*types.Func]bool) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return "", false
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "net" || pkg == "net/http":
		return "I/O (" + pkg + "." + fn.Name() + ")", true
	case pkg == "os" && osFileOps[fn.Name()]:
		return "I/O (os." + fn.Name() + ")", true
	case isOSFileMethod(fn):
		return "I/O ((*os.File)." + fn.Name() + ")", true
	case pkg == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
		if len(call.Args) > 0 && !isInMemoryWriter(pass, call.Args[0]) {
			return "I/O (fmt." + fn.Name() + " to a non-buffer writer)", true
		}
	}
	if mayBlock[fn] {
		return "a call to " + fn.Name() + ", which may block", true
	}
	if pass.Facts != nil {
		if f, ok := pass.Facts.ImportFact(fn.FullName()); ok {
			if s, ok := f.(Summary); ok && s.MayBlock {
				return "a call to " + fn.Name() + ", which may block", true
			}
		}
	}
	return "", false
}

// osFileOps are the os package functions treated as file I/O.
var osFileOps = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "Rename": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Truncate": true,
}

// isOSFileMethod reports whether fn is a method on *os.File.
func isOSFileMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// isInMemoryWriter reports whether expr's static type is *bytes.Buffer or
// *strings.Builder — writers that cannot block.
func isInMemoryWriter(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	}
	return false
}

// computeMayBlock decides, for every declared function, whether calling it
// can block, following local calls transitively (cycles resolve to the
// primitives found before the cycle closes).
func computeMayBlock(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	memo := map[*types.Func]bool{}
	visiting := map[*types.Func]bool{}
	var visit func(fn *types.Func) bool
	visit = func(fn *types.Func) bool {
		if v, ok := memo[fn]; ok {
			return v
		}
		if visiting[fn] {
			return false
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		fd := decls[fn]
		if fd == nil {
			if pass.Facts != nil {
				if f, ok := pass.Facts.ImportFact(fn.FullName()); ok {
					if s, ok := f.(Summary); ok {
						memo[fn] = s.MayBlock
						return s.MayBlock
					}
				}
			}
			return false
		}
		blocks := false
		scanPruned(fd.Body, func(n ast.Node) bool {
			if blocks {
				return false
			}
			switch n := n.(type) {
			case *ast.SendStmt:
				blocks = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks = true
				}
			case *ast.SelectStmt:
				blocks = blockingSelect(n)
			case *ast.RangeStmt:
				if isChanExpr(pass, n.X) {
					blocks = true
				}
			case *ast.CallExpr:
				if d, ok := callBlocks(pass, n, nil); ok {
					_ = d
					blocks = true
				} else if callee := calleeFunc(pass, n); callee != nil && decls[callee] != nil {
					if visit(callee) {
						blocks = true
					}
				}
			}
			return !blocks
		})
		memo[fn] = blocks
		return blocks
	}
	for fn := range decls {
		visit(fn)
	}
	return memo
}

// blockingSelect reports whether sel has no default clause.
func blockingSelect(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// joinFacts merges two lock facts: agreeing keys keep their state, any
// disagreement (including touched-vs-untouched) becomes maybe.
func joinFacts(a, b dataflow.Fact) dataflow.Fact {
	fa, fb := a.(lockFact), b.(lockFact)
	out := make(lockFact, len(fa)+len(fb))
	for k, va := range fa {
		if vb, ok := fb[k]; ok {
			if va == vb {
				out[k] = va
			} else {
				out[k] = stMaybe
			}
		} else if va == stLocked || va == stMaybe {
			out[k] = stMaybe
		} else {
			out[k] = va
		}
	}
	for k, vb := range fb {
		if _, ok := fa[k]; ok {
			continue
		}
		if vb == stLocked || vb == stMaybe {
			out[k] = stMaybe
		} else {
			out[k] = vb
		}
	}
	return out
}

func equalFacts(a, b dataflow.Fact) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

// firstLockSites maps each mutex key to its lexically first Lock call in
// body — the anchor for release-on-every-path diagnostics.
func firstLockSites(pass *analysis.Pass, body *ast.BlockStmt) map[string]token.Pos {
	out := map[string]token.Pos{}
	scanPruned(body, func(n ast.Node) bool {
		if key, kind, ok := lockEvent(pass, n); ok && kind == evLock {
			if _, seen := out[key]; !seen {
				out[key] = n.Pos()
			}
		}
		return true
	})
	return out
}

// calleeFunc resolves a call's target to a declared function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// isChanExpr reports whether expr has channel type.
func isChanExpr(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// scanPruned walks n, pruning nested function literals.
func scanPruned(n ast.Node, f func(ast.Node) bool) {
	root := n
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok && m != root {
			return false
		}
		return f(m)
	})
}

// isTestFile reports whether file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go")
}
