package ctxpair_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/ctxpair"
)

func TestDiagnostics(t *testing.T) {
	analysistest.Run(t, "testdata", "a", ctxpair.Analyzer)
}
