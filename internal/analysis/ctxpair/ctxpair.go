// Package ctxpair keeps the repo's dual API surface consistent. PR 1 gave
// every cancellable entry point a FooContext variant while keeping the
// plain Foo as back-compat sugar; this analyzer pins that shape down:
//
//   - every exported FooContext function or method (context.Context first
//     parameter) must have an exported Foo counterpart with the same
//     receiver;
//   - that Foo counterpart must delegate to FooContext with
//     context.Background() as the first argument, so the two variants
//     cannot drift apart behaviorally;
//   - conversely, an exported function taking a context.Context first
//     parameter must be named FooContext, so callers can always predict
//     which variant accepts a context.
//
// Methods on unexported receiver types and test files are out of scope.
package ctxpair

import (
	"go/ast"
	"go/types"
	"strings"

	"lcrb/internal/analysis"
)

// Analyzer is the ctxpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpair",
	Doc:  "require Foo/FooContext pairs where Foo delegates with context.Background()",
	Run:  run,
}

// declKey identifies a function declaration: receiver type name (empty for
// package-level functions) plus function name.
type declKey struct {
	recv string
	name string
}

func run(pass *analysis.Pass) error {
	decls := map[declKey]*ast.FuncDecl{}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				decls[declKey{recvTypeName(fd), fd.Name.Name}] = fd
			}
		}
	}

	for key, fd := range decls {
		if !ast.IsExported(key.name) || (key.recv != "" && !ast.IsExported(key.recv)) {
			continue
		}
		hasCtx := firstParamIsContext(pass, fd)
		if base, isCtxName := strings.CutSuffix(key.name, "Context"); isCtxName && base != "" && ast.IsExported(base) && hasCtx {
			counterpart, ok := decls[declKey{key.recv, base}]
			if !ok {
				pass.Reportf(fd.Name.Pos(), "exported %s has no %s counterpart; add the back-compat variant", key.name, base)
				continue
			}
			if !delegates(pass, counterpart, key.name) {
				pass.Reportf(counterpart.Name.Pos(), "%s does not delegate to %s(context.Background(), ...); the pair can drift apart", base, key.name)
			}
		} else if hasCtx {
			pass.Reportf(fd.Name.Pos(), "exported %s takes a context.Context but is not named %sContext", key.name, key.name)
		}
	}
	return nil
}

// recvTypeName returns the name of fd's receiver type, or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// firstParamIsContext reports whether fd's first parameter is a
// context.Context.
func firstParamIsContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	return params.Len() > 0 && isContextType(params.At(0).Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// delegates reports whether fd's body calls ctxName with
// context.Background() as the first argument.
func delegates(pass *analysis.Pass, fd *ast.FuncDecl, ctxName string) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		var callee *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee = fun
		case *ast.SelectorExpr:
			callee = fun.Sel
		default:
			return true
		}
		fn, ok := pass.TypesInfo.ObjectOf(callee).(*types.Func)
		if !ok || fn.Name() != ctxName || fn.Pkg() != pass.Pkg {
			return true
		}
		if isBackgroundCall(pass, call.Args[0]) {
			found = true
		}
		return !found
	})
	return found
}

// isBackgroundCall reports whether expr is context.Background().
func isBackgroundCall(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Background"
}
