// Package a exercises the ctxpair analyzer: every exported FooContext
// needs a Foo counterpart delegating with context.Background(), and an
// exported context-taking function must carry the Context suffix.
package a

import "context"

// Solve / SolveContext is the sanctioned pair.
func Solve(x int) int {
	return SolveContext(context.Background(), x)
}

// SolveContext is Solve with cancellation support.
func SolveContext(ctx context.Context, x int) int {
	if ctx.Err() != nil {
		return 0
	}
	return x
}

// OrphanContext has no back-compat variant.
func OrphanContext(ctx context.Context) error { // want `exported OrphanContext has no Orphan counterpart; add the back-compat variant`
	return ctx.Err()
}

// Drift has a Context sibling but computes its own answer instead of
// delegating, so the two can diverge.
func Drift(x int) int { // want `Drift does not delegate to DriftContext\(context\.Background\(\), \.\.\.\); the pair can drift apart`
	return x + 1
}

// DriftContext is the context-aware sibling Drift fails to call.
func DriftContext(ctx context.Context, x int) int {
	if ctx.Err() != nil {
		return 0
	}
	return x + 1
}

// Fetch takes a context but is missing the Context suffix.
func Fetch(ctx context.Context) error { // want `exported Fetch takes a context\.Context but is not named FetchContext`
	return ctx.Err()
}

// helper is unexported: out of scope.
func helper(ctx context.Context) error {
	return ctx.Err()
}

// Runner shows the method form of the pair.
type Runner struct{}

// Run delegates like the package-level pair does.
func (r *Runner) Run(x int) int {
	return r.RunContext(context.Background(), x)
}

// RunContext is Run with cancellation support.
func (r *Runner) RunContext(ctx context.Context, x int) int {
	if ctx.Err() != nil {
		return 0
	}
	return x
}

type inner struct{}

// DoContext sits on an unexported receiver: out of scope.
func (inner) DoContext(ctx context.Context) error {
	return ctx.Err()
}
