package checker_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/checker"
	"lcrb/internal/analysis/load"
)

// parsePkg type-checks one on-disk file into a load.Package so the checker
// can be driven without shelling out to go list.
func parsePkg(t *testing.T, fset *token.FileSet, path string) *load.Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{PkgPath: "p", Name: "p", Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

func TestRunOrdersAndSuppresses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	src := `package p

func b() {}

//lint:ignore probe deliberately quiet here
func a() {}

func c() {}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg := parsePkg(t, fset, path)

	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "report every function declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := checker.Run(fset, []*load.Package{pkg}, []*analysis.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (a is suppressed): %v", len(findings), findings)
	}
	if findings[0].Diag.Message != "func b" || findings[1].Diag.Message != "func c" {
		t.Fatalf("wrong order or content: %v", findings)
	}
	want := path + ":3:1: probe: func b"
	if findings[0].String() != want {
		t.Fatalf("String() = %q, want %q", findings[0].String(), want)
	}
}

func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	src := `package p

func old() {}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg := parsePkg(t, fset, path)

	rename := &analysis.Analyzer{
		Name: "rename",
		Doc:  "suggest renaming old to renamed",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Name.Name != "old" {
						continue
					}
					pass.Report(analysis.Diagnostic{
						Pos:     fd.Name.Pos(),
						Message: "stale name",
						SuggestedFixes: []analysis.SuggestedFix{{
							Message: "rename to renamed",
							TextEdits: []analysis.TextEdit{{
								Pos:     fd.Name.Pos(),
								End:     fd.Name.End(),
								NewText: []byte("renamed"),
							}},
						}},
					})
				}
			}
			return nil
		},
	}
	findings, err := checker.Run(fset, []*load.Package{pkg}, []*analysis.Analyzer{rename})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := checker.ApplyFixes(fset, findings)
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Fatalf("fixed %d findings, want 1", fixed)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := `package p

func renamed() {}
`
	if string(got) != want {
		t.Fatalf("fixed file:\n%s\nwant:\n%s", got, want)
	}
}
