// Package checker drives analyzers over loaded packages: it runs each
// analyzer, honors lint:ignore suppressions, orders findings
// deterministically, and can apply suggested fixes in place.
package checker

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"sort"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/dataflow"
	"lcrb/internal/analysis/load"
)

// Finding pairs a diagnostic with where it came from.
type Finding struct {
	Analyzer string
	PkgPath  string
	Pos      token.Position
	Diag     analysis.Diagnostic
}

// String renders a finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Diag.Message)
}

// Detail is the full outcome of a checker run: the surviving findings plus
// the positions of every lint:ignore directive that actually silenced a
// diagnostic (the -ignores audit uses this to detect stale suppressions).
type Detail struct {
	Findings []Finding
	// Fired maps the source position of each lint:ignore directive that
	// suppressed at least one diagnostic to true.
	Fired map[token.Position]bool
}

// Run executes every analyzer on every package and returns the surviving
// (non-suppressed) findings sorted by position then analyzer name.
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	detail, err := RunDetailed(fset, pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return detail.Findings, nil
}

// RunDetailed is Run plus suppression bookkeeping. Packages are visited in
// dependency order (imports before importers) and each analyzer keeps one
// fact store across the whole run, so summaries exported for a function in
// a dependency are importable while analyzing its callers.
func RunDetailed(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer) (*Detail, error) {
	detail := &Detail{Fired: map[token.Position]bool{}}
	facts := make(map[*analysis.Analyzer]*dataflow.FactStore, len(analyzers))
	for _, a := range analyzers {
		facts[a] = dataflow.NewFactStore()
	}
	for _, pkg := range depOrder(pkgs) {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts[a],
			}
			pass.Report = func(d analysis.Diagnostic) {
				if file := enclosingFile(pkg.Files, d.Pos); file != nil {
					if dirPos, ok := analysis.SuppressingDirective(fset, file, a.Name, d.Pos); ok {
						detail.Fired[fset.Position(dirPos)] = true
						return
					}
				}
				detail.Findings = append(detail.Findings, Finding{
					Analyzer: a.Name,
					PkgPath:  pkg.PkgPath,
					Pos:      fset.Position(d.Pos),
					Diag:     d,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("checker: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(detail.Findings, func(i, j int) bool {
		pi, pj := detail.Findings[i].Pos, detail.Findings[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return detail.Findings[i].Analyzer < detail.Findings[j].Analyzer
	})
	return detail, nil
}

// depOrder sorts packages so every package follows the targets it imports
// (build imports only), matching the order fact-exporting analyzers need.
// The input order (load.Load returns PkgPath-sorted packages) breaks ties,
// so the result is deterministic.
func depOrder(pkgs []*load.Package) []*load.Package {
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	out := make([]*load.Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		switch state[p.PkgPath] {
		case 1, 2:
			return
		}
		state[p.PkgPath] = 1
		for _, dep := range p.Imports() {
			if d, ok := byPath[dep]; ok {
				visit(d)
			}
		}
		state[p.PkgPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// enclosingFile returns the syntax file containing pos, if any.
func enclosingFile(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// ApplyFixes writes every finding's first suggested fix back to disk and
// reports how many findings were fixed. Overlapping edits are rejected so a
// half-applied rewrite can't corrupt a file.
func ApplyFixes(fset *token.FileSet, findings []Finding) (int, error) {
	type edit struct {
		start, end int // byte offsets within the file
		newText    []byte
	}
	perFile := map[string][]edit{}
	fixed := 0
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			continue
		}
		fix := f.Diag.SuggestedFixes[0]
		ok := len(fix.TextEdits) > 0
		staged := map[string][]edit{}
		for _, te := range fix.TextEdits {
			if !te.Pos.IsValid() {
				ok = false
				break
			}
			start := fset.Position(te.Pos)
			end := start
			if te.End.IsValid() {
				end = fset.Position(te.End)
			}
			if end.Filename != start.Filename || end.Offset < start.Offset {
				ok = false
				break
			}
			staged[start.Filename] = append(staged[start.Filename], edit{start.Offset, end.Offset, te.NewText})
		}
		if !ok {
			continue
		}
		fixed++
		for name, es := range staged {
			perFile[name] = append(perFile[name], es...)
		}
	}
	names := make([]string, 0, len(perFile))
	for name := range perFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return 0, fmt.Errorf("checker: overlapping fixes in %s", name)
			}
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return 0, fmt.Errorf("checker: apply fixes: %w", err)
		}
		for _, e := range edits {
			if e.end > len(src) {
				return 0, fmt.Errorf("checker: fix out of range in %s", name)
			}
			src = append(src[:e.start], append(append([]byte{}, e.newText...), src[e.end:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return 0, fmt.Errorf("checker: fixed %s does not parse: %w", name, err)
		}
		if err := os.WriteFile(name, formatted, 0o644); err != nil {
			return 0, fmt.Errorf("checker: apply fixes: %w", err)
		}
	}
	return fixed, nil
}
