// Package load turns `go list` package patterns into parsed, type-checked
// packages ready for analysis, using only the standard library.
//
// Without golang.org/x/tools/go/packages available, loading works in two
// steps: `go list -json` enumerates the target packages (directories, file
// lists, import graphs), then go/parser + go/types check each target from
// source. Imports that are themselves targets resolve to the packages this
// loader checked; everything else (the standard library, chiefly) falls
// back to go/importer's source importer, which compiles type information
// from GOROOT sources and needs no pre-built export data.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked target package.
type Package struct {
	// PkgPath is the import path (e.g. "lcrb/internal/graph").
	PkgPath string
	// Name is the package name (e.g. "graph", "main").
	Name string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files holds the parsed syntax trees for GoFiles plus in-package
	// test files, in deterministic (sorted filename) order.
	Files []*ast.File
	// Types and TypesInfo are the go/types results for Files.
	Types     *types.Package
	TypesInfo *types.Info

	imports []string
}

// Imports returns the package's build-time import paths (test-only imports
// excluded), as reported by `go list`. Checkers use it to order analysis
// runs so cross-function facts exported by a dependency are available when
// its importers are analyzed.
func (p *Package) Imports() []string {
	return p.imports
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	Imports      []string
	TestImports  []string
	Incomplete   bool
	Error        *struct{ Err string }
	DepsErrors   []*struct{ Err string }
	ForTest      string
	Module       *struct{ Path string }
	Standard     bool
	CgoFiles     []string
	IgnoredFiles []string
}

// Load lists the packages matching patterns (relative to dir), parses and
// type-checks them in dependency order, and returns them sorted by import
// path. Test files belonging to the package under test are included;
// external _test packages are not.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Targets import each other; resolve those imports to our own checked
	// packages and lean on the source importer for the rest.
	imp := &cachingImporter{
		fallback: importer.ForCompiler(fset, "source", nil),
		checked:  map[string]*types.Package{},
	}

	// Phase 1: check the build half of every target (GoFiles only) in
	// dependency order, so later packages import these results. Test files
	// must stay out of this phase: in-package tests may import packages
	// that in turn depend on this one (a legal cycle in Go, since tests
	// are not part of the build graph), which would break the ordering.
	pkgs := make(map[string]*Package, len(listed))
	for _, lp := range topoOrder(listed) {
		if len(lp.GoFiles) == 0 {
			continue // test-only package; phase 2 picks it up
		}
		pkg, err := checkPackage(fset, lp, imp, false)
		if err != nil {
			return nil, err
		}
		imp.checked[pkg.PkgPath] = pkg.Types
		pkgs[pkg.PkgPath] = pkg
	}

	// Phase 2: for packages with in-package test files, re-check the
	// test-augmented package for analysis. Its imports all resolve against
	// the phase-1 cache, so ordering no longer matters.
	for _, lp := range listed {
		if len(lp.TestGoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, lp, imp, true)
		if err != nil {
			return nil, err
		}
		pkgs[pkg.PkgPath] = pkg
	}

	out := make([]*Package, 0, len(pkgs))
	for _, p := range pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// goList shells out to the go command to enumerate target packages.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 && len(lp.TestGoFiles) == 0 {
			continue
		}
		out = append(out, lp)
	}
	return out, nil
}

// topoOrder sorts the listed packages so every package appears after the
// targets it imports (build imports only — test imports may form cycles).
func topoOrder(listed []*listedPackage) []*listedPackage {
	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	var out []*listedPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(lp *listedPackage)
	visit = func(lp *listedPackage) {
		switch state[lp.ImportPath] {
		case 1, 2:
			return // build-import cycles are a compile error; just don't loop
		}
		state[lp.ImportPath] = 1
		for _, dep := range lp.Imports {
			if d, ok := byPath[dep]; ok {
				visit(d)
			}
		}
		state[lp.ImportPath] = 2
		out = append(out, lp)
	}
	// Listed order from the go command is already deterministic.
	for _, lp := range listed {
		visit(lp)
	}
	return out
}

// checkPackage parses and type-checks one listed package, with or without
// its in-package test files.
func checkPackage(fset *token.FileSet, lp *listedPackage, imp types.Importer, withTests bool) (*Package, error) {
	names := append([]string{}, lp.GoFiles...)
	if withTests {
		names = append(names, lp.TestGoFiles...)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Name:      lp.Name,
		Dir:       lp.Dir,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		imports:   lp.Imports,
	}, nil
}

// cachingImporter resolves already-checked target packages before falling
// back to the (internally caching) source importer.
type cachingImporter struct {
	fallback types.Importer
	checked  map[string]*types.Package
}

func (ci *cachingImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.checked[path]; ok {
		return p, nil
	}
	return ci.fallback.Import(path)
}
