package load_test

import (
	"go/token"
	"strings"
	"testing"

	"lcrb/internal/analysis/load"
)

// TestLoadSinglePackage loads the repo's cheapest internal package and
// checks the loaded shape: syntax, types, and in-package test files.
func TestLoadSinglePackage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := load.Load(fset, ".", "lcrb/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "lcrb/internal/rng" || p.Name != "rng" {
		t.Fatalf("got %s (%s), want lcrb/internal/rng (rng)", p.PkgPath, p.Name)
	}
	if len(p.Files) == 0 || p.Types == nil || p.TypesInfo == nil {
		t.Fatalf("incomplete package: %d files, types %v", len(p.Files), p.Types)
	}
	if len(p.TypesInfo.Defs) == 0 {
		t.Fatal("TypesInfo carries no definitions")
	}
	hasTest := false
	for _, f := range p.Files {
		if strings.HasSuffix(fset.Position(f.FileStart).Filename, "_test.go") {
			hasTest = true
		}
	}
	if !hasTest {
		t.Fatal("in-package test files were not loaded")
	}
	if p.Types.Scope().Lookup("New") == nil {
		t.Fatal("rng.New not found in package scope")
	}
}

// TestLoadWithTestImportCycle loads a pair of packages whose in-package
// tests import each other's packages — legal in Go because tests sit
// outside the build graph, and the reason loading runs in two phases.
func TestLoadWithTestImportCycle(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := load.Load(fset, ".", "lcrb/internal/gen", "lcrb/internal/community", "lcrb/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("got %d packages, want 3", len(pkgs))
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1].PkgPath >= pkgs[i].PkgPath {
			t.Fatalf("packages not sorted: %s before %s", pkgs[i-1].PkgPath, pkgs[i].PkgPath)
		}
	}
}
