package analysis_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"lcrb/internal/analysis"
)

const src = `package p

func f() {
	a() //lint:ignore mapiter same-line reason
	//lint:ignore rngsource,errfmt line-above reason
	b()
	//lint:ignore all blanket reason
	c()
	//lint:ignore ctxpair
	d()
	e()
}
`

func TestSuppressed(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pos := func(marker string) token.Pos {
		off := strings.Index(src, marker)
		if off < 0 {
			t.Fatalf("marker %q not in src", marker)
		}
		return fset.File(file.FileStart).Pos(off)
	}

	cases := []struct {
		marker   string
		analyzer string
		want     bool
	}{
		{"a()", "mapiter", true},    // directive on the flagged line
		{"a()", "errfmt", false},    // wrong analyzer name
		{"b()", "rngsource", true},  // comma list, line above
		{"b()", "errfmt", true},     // second name in the list
		{"b()", "mapiter", false},   // not in the list
		{"c()", "ctxpair", true},    // "all" silences every analyzer
		{"d()", "ctxpair", false},   // reasonless directive is not honored
		{"e()", "rngsource", false}, // no directive in range
	}
	for _, tc := range cases {
		if got := analysis.Suppressed(fset, file, tc.analyzer, pos(tc.marker)); got != tc.want {
			t.Errorf("Suppressed(%s at %s) = %v, want %v", tc.analyzer, tc.marker, got, tc.want)
		}
	}
}
