// Package detflow is the interprocedural upgrade of mapiter: a
// flow-sensitive taint analysis that keeps nondeterminism out of the
// repo's results. Taint enters at map iteration order (the range key and
// value variables), wall-clock reads (time.Now), and math/rand calls —
// the blessed lcrb/internal/rng package is seeded and deterministic, so
// it is not a source. Taint propagates through assignments, operators and
// calls (any tainted argument or receiver taints the result), and is
// removed by the idioms that restore determinism: time.Since / Time.Sub
// (durations are measurements, not decisions), and the sort/slices
// sorting functions, which canonicalize whatever order the map handed
// out.
//
// A diagnostic fires when a tainted value reaches a determinism-critical
// sink: a GreedyResult composite literal, anything named like a
// fingerprint (field assignments or function arguments), or the payload
// of an os.WriteFile call whose constant filename contains "BENCH_".
//
// Per function, the analysis solves a forward dataflow problem over the
// CFG whose facts are sets of tainted objects; per package, it iterates
// function summaries ("returns a tainted value") to a fixpoint and
// exports them as cross-function facts, so a helper that leaks map order
// through its return value taints its callers — including callers in
// importing packages, via the checker's dependency-ordered fact store.
//
// Function literals are analyzed as separate functions with a clean
// boundary; taint does not follow captured variables into or out of
// closures, struct fields, or channels (documented unsoundness,
// DESIGN.md §12). Test files are exempt.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/cfg"
	"lcrb/internal/analysis/dataflow"
)

// Analyzer is the detflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc:  "forbid map-order, wall-clock, and math/rand taint from reaching results, fingerprints, or BENCH_ outputs",
	Run:  run,
}

// Summary is the cross-function fact detflow exports per function.
type Summary struct {
	// TaintedResults reports that some return path yields a value
	// influenced by a nondeterminism source.
	TaintedResults bool
}

// taintFact is the set of tainted objects on a path. Facts are immutable:
// transfer copies before writing.
type taintFact map[types.Object]bool

func run(pass *analysis.Pass) error {
	a := &analyzer{pass: pass, summaries: map[*types.Func]bool{}}

	var decls []*ast.FuncDecl
	fns := map[*ast.FuncDecl]*types.Func{}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func); ok {
					decls = append(decls, fd)
					fns[fd] = fn
				}
			}
		}
	}

	// Phase 1: iterate return-taint summaries to a fixpoint. Summaries
	// only flip false→true, so the loop terminates after at most
	// len(decls) rounds.
	for {
		changed := false
		for _, fd := range decls {
			if a.summaries[fns[fd]] {
				continue
			}
			if a.solve(fd.Body, nil) {
				a.summaries[fns[fd]] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if pass.Facts != nil {
		for fn, tainted := range a.summaries {
			pass.Facts.ExportFact(fn.FullName(), Summary{TaintedResults: tainted})
		}
	}

	// Phase 2: report sinks, with function literals analyzed as functions
	// of their own.
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					a.solve(n.Body, pass.Report)
				}
			case *ast.FuncLit:
				a.solve(n.Body, pass.Report)
				return false
			}
			return true
		})
	}
	return nil
}

type analyzer struct {
	pass      *analysis.Pass
	summaries map[*types.Func]bool
}

// solve runs the taint problem over one body. It returns whether any
// return statement yields a tainted value; when report is non-nil it also
// emits sink diagnostics (the reporting pass re-runs each block's
// transfer from its stable input, so diagnostics appear exactly once).
func (a *analyzer) solve(body *ast.BlockStmt, report func(analysis.Diagnostic)) bool {
	graph := cfg.New(body)
	prob := &dataflow.Problem{
		Graph:    graph,
		Dir:      dataflow.Forward,
		Boundary: taintFact{},
		Join: func(x, y dataflow.Fact) dataflow.Fact {
			fx, fy := x.(taintFact), y.(taintFact)
			out := make(taintFact, len(fx)+len(fy))
			for k := range fx {
				out[k] = true
			}
			for k := range fy {
				out[k] = true
			}
			return out
		},
		Equal: func(x, y dataflow.Fact) bool {
			fx, fy := x.(taintFact), y.(taintFact)
			if len(fx) != len(fy) {
				return false
			}
			for k := range fx {
				if !fy[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(blk *cfg.Block, in dataflow.Fact) dataflow.Fact {
			f, _ := a.transferBlock(blk, in.(taintFact), nil)
			return f
		},
	}
	res := dataflow.Solve(prob)

	returnsTainted := false
	for _, blk := range graph.Blocks {
		in := res.In[blk]
		if in == nil {
			continue
		}
		_, rt := a.transferBlock(blk, in.(taintFact), report)
		returnsTainted = returnsTainted || rt
	}
	return returnsTainted
}

// transferBlock applies one block's statements to the incoming taint set.
// When report is non-nil, sink diagnostics are emitted. The second result
// reports whether a return statement in this block yields a tainted
// value.
func (a *analyzer) transferBlock(blk *cfg.Block, in taintFact, report func(analysis.Diagnostic)) (taintFact, bool) {
	cur := in
	cloned := false
	set := func(obj types.Object, tainted bool) {
		if obj == nil {
			return
		}
		if cur[obj] == tainted {
			return
		}
		if !cloned {
			next := make(taintFact, len(cur)+1)
			for k := range cur {
				next[k] = true
			}
			cur, cloned = next, true
		}
		if tainted {
			cur[obj] = true
		} else {
			delete(cur, obj)
		}
	}
	returnsTainted := false

	for _, node := range blk.Nodes {
		switch n := node.(type) {
		case *cfg.RangeHead:
			// Map iteration order is a source; ranging over an
			// already-tainted sequence propagates.
			if isMapExpr(a.pass, n.Range.X) || a.exprTainted(n.Range.X, cur) {
				if n.Range.Key != nil {
					set(a.identObj(n.Range.Key), true)
				}
				if n.Range.Value != nil {
					set(a.identObj(n.Range.Value), true)
				}
			}
			continue
		case *cfg.SelectHead, *cfg.CommHead:
			continue
		case *ast.DeferStmt, *ast.GoStmt:
			continue
		}

		// Sinks are checked against the state before this node's updates.
		if report != nil {
			a.checkSinks(node, cur, report)
		}

		switch n := node.(type) {
		case *ast.AssignStmt:
			a.applyAssign(n, cur, set)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							set(a.identObj(name), a.exprTainted(vs.Values[i], cur))
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if a.exprTainted(r, cur) {
					returnsTainted = true
				}
			}
		}

		// Sorting canonicalizes its argument in place: untaint the root
		// identifiers handed to a sort call, wherever it appears.
		scanPruned(node, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !a.isSortMutator(call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					set(a.identObj(id), false)
				}
			}
			return true
		})
	}
	return cur, returnsTainted
}

// applyAssign updates taint for one assignment, with strong updates for
// plain identifier targets. Field and index stores are dropped (taint
// does not follow heap structure; documented unsoundness).
func (a *analyzer) applyAssign(assign *ast.AssignStmt, cur taintFact, set func(types.Object, bool)) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// x, y := f() — one source taints every target.
		tainted := a.exprTainted(assign.Rhs[0], cur)
		for _, lhs := range assign.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				set(a.identObj(id), tainted)
			}
		}
		return
	}
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		tainted := a.exprTainted(assign.Rhs[i], cur)
		if assign.Tok == token.ADD_ASSIGN || assign.Tok == token.SUB_ASSIGN ||
			assign.Tok == token.MUL_ASSIGN || assign.Tok == token.QUO_ASSIGN {
			// x += tainted keeps x tainted if either side is.
			tainted = tainted || cur[a.identObj(id)]
		}
		set(a.identObj(id), tainted)
	}
}

// checkSinks scans one CFG node for determinism-critical sinks reached by
// tainted values.
func (a *analyzer) checkSinks(node ast.Node, cur taintFact, report func(analysis.Diagnostic)) {
	reportf := func(pos token.Pos, format string, args ...any) {
		report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	scanPruned(node, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CompositeLit:
			if !isNamedType(a.pass, m, "GreedyResult") {
				return true
			}
			for _, elt := range m.Elts {
				value := elt
				field := "(positional)"
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					value = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						field = id.Name
					}
				}
				if a.exprTainted(value, cur) {
					reportf(value.Pos(), "nondeterministic value (map order, wall clock, or math/rand) flows into GreedyResult field %s; sort or derive it via internal/rng first", field)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) {
					break
				}
				name := types.ExprString(lhs)
				if !strings.Contains(strings.ToLower(name), "fingerprint") {
					continue
				}
				if a.exprTainted(m.Rhs[i], cur) {
					reportf(m.Pos(), "nondeterministic value (map order, wall clock, or math/rand) flows into fingerprint %s; canonicalize the input first", name)
				}
			}
		case *ast.CallExpr:
			fn := a.calleeFunc(m)
			if fn == nil {
				return true
			}
			if strings.Contains(fn.Name(), "Fingerprint") {
				for _, arg := range m.Args {
					if a.exprTainted(arg, cur) {
						reportf(m.Pos(), "nondeterministic value (map order, wall clock, or math/rand) flows into %s; canonicalize the input first", fn.Name())
						break
					}
				}
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "WriteFile" && len(m.Args) >= 2 {
				if cv := a.pass.TypesInfo.Types[m.Args[0]].Value; cv != nil && strings.Contains(cv.String(), "BENCH_") {
					if a.exprTainted(m.Args[1], cur) {
						reportf(m.Pos(), "nondeterministic value (map order, wall clock, or math/rand) flows into a BENCH_ file write; benchmarks must be replayable")
					}
				}
			}
		}
		return true
	})
}

// exprTainted reports whether evaluating e yields a tainted value under
// the current fact. Calls are boundaries: sanitizers scrub regardless of
// their arguments, sources taint regardless of theirs.
func (a *analyzer) exprTainted(e ast.Expr, cur taintFact) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := a.identObj(e)
		return obj != nil && cur[obj]
	case *ast.CallExpr:
		if a.isSanitizer(e) {
			return false
		}
		if a.isSource(e) {
			return true
		}
		if fn := a.calleeFunc(e); fn != nil {
			if a.summaries[fn] {
				return true
			}
			if a.pass.Facts != nil {
				if f, ok := a.pass.Facts.ImportFact(fn.FullName()); ok {
					if s, ok := f.(Summary); ok && s.TaintedResults {
						return true
					}
				}
			}
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && a.exprTainted(sel.X, cur) {
			return true
		}
		for _, arg := range e.Args {
			if a.exprTainted(arg, cur) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return a.exprTainted(e.X, cur) || a.exprTainted(e.Y, cur)
	case *ast.UnaryExpr:
		return a.exprTainted(e.X, cur)
	case *ast.ParenExpr:
		return a.exprTainted(e.X, cur)
	case *ast.StarExpr:
		return a.exprTainted(e.X, cur)
	case *ast.SelectorExpr:
		return a.exprTainted(e.X, cur)
	case *ast.IndexExpr:
		return a.exprTainted(e.X, cur) || a.exprTainted(e.Index, cur)
	case *ast.SliceExpr:
		if a.exprTainted(e.X, cur) {
			return true
		}
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil && a.exprTainted(b, cur) {
				return true
			}
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if a.exprTainted(elt, cur) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return a.exprTainted(e.Value, cur)
	case *ast.TypeAssertExpr:
		return a.exprTainted(e.X, cur)
	default:
		return false
	}
}

// isSource matches time.Now() and anything from math/rand or
// math/rand/v2. lcrb/internal/rng is seeded and deterministic, so it is
// deliberately not a source.
func (a *analyzer) isSource(call *ast.CallExpr) bool {
	fn := a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "time" && fn.Name() == "Now":
		return true
	case pkg == "math/rand" || pkg == "math/rand/v2":
		return true
	}
	return false
}

// isSanitizer matches the determinism-restoring calls: time.Since,
// Time.Sub, and the slices package's sorted constructors (sorting-in-place
// functions are handled as statement-level mutators).
func (a *analyzer) isSanitizer(call *ast.CallExpr) bool {
	fn := a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "time" && fn.Name() == "Since":
		return true
	case pkg == "time" && fn.Name() == "Sub":
		return true
	case pkg == "slices" && strings.HasPrefix(fn.Name(), "Sorted"):
		return true
	}
	return false
}

// isSortMutator matches in-place sorting calls whose argument comes out
// canonically ordered: the sort package's sorters and slices.Sort*.
func (a *analyzer) isSortMutator(call *ast.CallExpr) bool {
	fn := a.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	switch {
	case pkg == "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Sort", "Stable", "Slice", "SliceStable":
			return true
		}
	case pkg == "slices" && strings.HasPrefix(fn.Name(), "Sort"):
		return true
	}
	return false
}

// identObj resolves an identifier or identifier-expression to its object.
func (a *analyzer) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return a.pass.TypesInfo.ObjectOf(id)
}

// calleeFunc resolves a call's target to a declared function or method.
func (a *analyzer) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := a.pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// isMapExpr reports whether expr has map type.
func isMapExpr(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

// isNamedType reports whether expr's type (pointer-stripped) is a named
// type with the given name.
func isNamedType(pass *analysis.Pass, expr ast.Expr, name string) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// scanPruned walks n, pruning nested function literals.
func scanPruned(n ast.Node, f func(ast.Node) bool) {
	root := n
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok && m != root {
			return false
		}
		return f(m)
	})
}

// isTestFile reports whether file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go")
}
