package detflow_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", "a", detflow.Analyzer)
}
