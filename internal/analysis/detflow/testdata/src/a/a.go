// Package a exercises the detflow analyzer: map-order, wall-clock, and
// math/rand taint reaching results, fingerprints, and BENCH_ writes.
package a

import (
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// GreedyResult mirrors the core result type detflow protects.
type GreedyResult struct {
	Seeds   []string
	Cost    float64
	Elapsed time.Duration
}

// keysOf leaks map iteration order through its return value; detflow
// exports that as a cross-function fact.
func keysOf(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// --- interprocedural: a helper's return taint reaches the caller ---

func pickFirst(m map[string]int) GreedyResult {
	order := keysOf(m)
	return GreedyResult{Seeds: order} // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into GreedyResult field Seeds; sort or derive it via internal/rng first`
}

// pickSorted is the blessed idiom: sorting canonicalizes the order the
// map handed out.
func pickSorted(m map[string]int) GreedyResult {
	order := keysOf(m)
	sort.Strings(order)
	return GreedyResult{Seeds: order}
}

// --- wall clock ---

func leakClock(xs []string) GreedyResult {
	return GreedyResult{Seeds: xs, Cost: float64(time.Now().UnixNano())} // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into GreedyResult field Cost`
}

// elapsedOK measures with the clock but only a duration escapes:
// time.Since sanitizes.
func elapsedOK(xs []string) GreedyResult {
	start := time.Now()
	return GreedyResult{Seeds: xs, Elapsed: time.Since(start)}
}

// subOK: Time.Sub is the method form of the same sanitizer.
func subOK() time.Duration {
	start := time.Now()
	end := time.Now()
	return end.Sub(start)
}

// --- math/rand (internal/rng is seeded and deliberately not a source) ---

func randomPick(xs []string) GreedyResult {
	i := rand.Intn(len(xs))
	return GreedyResult{Seeds: []string{xs[i]}} // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into GreedyResult field Seeds`
}

// --- flow-sensitivity: taint picked up inside a loop survives the join ---

func valueOrder(m map[string]int) GreedyResult {
	best := ""
	for k, v := range m {
		if v > 0 {
			best = k
		}
	}
	return GreedyResult{Seeds: []string{best}} // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into GreedyResult field Seeds`
}

// --- ranging over an already-tainted slice propagates ---

func reorder(m map[string]int) []string {
	tainted := keysOf(m)
	var out []string
	for _, v := range tainted {
		out = append(out, v)
	}
	return out
}

func useReorder(m map[string]int) GreedyResult {
	return GreedyResult{Seeds: reorder(m)} // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into GreedyResult field Seeds`
}

// --- multi-value assignment from a tainted callee ---

func first(m map[string]int) (string, bool) {
	for k := range m {
		return k, true
	}
	return "", false
}

func multi(m map[string]int) GreedyResult {
	k, ok := first(m)
	if !ok {
		return GreedyResult{}
	}
	return GreedyResult{Seeds: []string{k}} // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into GreedyResult field Seeds`
}

// --- fingerprints ---

type sketch struct {
	Fingerprint string
	n           int
}

func stampFingerprint(m map[string]bool) sketch {
	var s sketch
	for k := range m {
		s.Fingerprint = k // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into fingerprint s\.Fingerprint; canonicalize the input first`
		s.n++
	}
	return s
}

func hashFingerprint(parts string) string {
	return parts
}

func callFingerprint(m map[string]bool) string {
	for k := range m {
		return hashFingerprint(k) // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into hashFingerprint; canonicalize the input first`
	}
	return ""
}

// --- BENCH_ artifacts must be replayable ---

func writeBench(m map[string]int) error {
	var lines []string
	for k := range m {
		lines = append(lines, k)
	}
	return os.WriteFile("BENCH_greedy.json", []byte(strings.Join(lines, "\n")), 0o644) // want `nondeterministic value \(map order, wall clock, or math/rand\) flows into a BENCH_ file write; benchmarks must be replayable`
}

func writeBenchSorted(m map[string]int) error {
	lines := keysOf(m)
	sort.Strings(lines)
	return os.WriteFile("BENCH_greedy.json", []byte(strings.Join(lines, "\n")), 0o644)
}
