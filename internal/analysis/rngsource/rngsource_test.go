package rngsource_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/rngsource"
)

func TestOutsideRNG(t *testing.T) {
	analysistest.Run(t, "testdata", "a", rngsource.Analyzer)
}

// TestInsideRNG checks the blessed package under its real import path:
// the import ban is lifted, the wall-clock seeding check is not.
func TestInsideRNG(t *testing.T) {
	analysistest.Run(t, "testdata", "lcrb/internal/rng", rngsource.Analyzer)
}
