// Package rng is type-checked under the blessed import path: the
// math/rand ban does not apply inside it, but wall-clock seeding is still
// flagged — a time-derived seed is unrecordable wherever it appears.
package rng

import (
	"math/rand"
	"time"
)

// Source wraps a seeded generator.
type Source struct{ r *rand.Rand }

// New returns a Source seeded deterministically.
func New(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewSource(int64(seed)))}
}

// globalOK shows the import-path exemption: inside this package the
// underlying streams are fair game.
func globalOK() int {
	return rand.Intn(3)
}

func fromClock() *Source {
	return New(uint64(time.Now().UnixNano())) // want `rng\.New seeded from time\.Now\(\); wall-clock seeds are not replayable, record an explicit seed`
}
