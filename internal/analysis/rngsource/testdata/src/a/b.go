package a

import randv2 "math/rand/v2" // want `import of math/rand/v2 outside lcrb/internal/rng; draw randomness from a seeded \*rng\.Source instead`

func v2Draw() uint64 {
	return randv2.Uint64() // want `v2\.Uint64 draws from the global math/rand stream; use a seeded \*rng\.Source from lcrb/internal/rng`
}
