// Package a exercises the rngsource analyzer outside the blessed rng
// package: math/rand imports are banned, global-stream draws are flagged,
// and wall-clock seeds are flagged even on explicit generators.
package a

import (
	"math/rand" // want `import of math/rand outside lcrb/internal/rng; draw randomness from a seeded \*rng\.Source instead`
	"time"
)

func globalDraw() int {
	return rand.Intn(6) // want `rand\.Intn draws from the global math/rand stream; use a seeded \*rng\.Source from lcrb/internal/rng`
}

func clockSeed() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want `rand\.NewSource seeded from time\.Now\(\); wall-clock seeds are not replayable, record an explicit seed`
	return rand.New(src)
}

// explicitSeed passes the seeding checks: a recorded integer seed replays.
func explicitSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// methodDraw passes the global-stream check: methods draw from the
// explicit generator, not the shared package-level stream.
func methodDraw(r *rand.Rand) int {
	return r.Intn(6)
}
