// Package rngsource forbids stochastic code from bypassing the repo's
// seeded-stream package lcrb/internal/rng. Every Monte-Carlo estimate in
// the reproduction must be replayable bit-for-bit from a recorded seed, so:
//
//   - importing math/rand or math/rand/v2 anywhere outside internal/rng is
//     a finding — their global functions draw from shared, randomly seeded
//     state, and even explicit rand.New sources duplicate what internal/rng
//     provides without Split semantics;
//   - seeding any generator from the wall clock (a time.Now() call inside
//     the seed expression of rand.New/NewSource/Seed or rng.New) is a
//     finding everywhere, including tests, because a time-derived seed is
//     unrecordable by construction.
package rngsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"lcrb/internal/analysis"
)

// rngPkgPath is the blessed source of randomness; the package itself is
// exempt from the import ban.
const rngPkgPath = "lcrb/internal/rng"

// Analyzer is the rngsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc:  "forbid math/rand and time-derived seeds outside lcrb/internal/rng",
	Run:  run,
}

// seedFuncs are functions whose arguments constitute a seed; a time.Now()
// call anywhere inside one of them defeats replayability.
var seedFuncs = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "Seed": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
	rngPkgPath:     {"New": true},
}

func run(pass *analysis.Pass) error {
	inRNG := pass.Pkg.Path() == rngPkgPath
	for _, file := range pass.Files {
		if !inRNG {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s outside %s; draw randomness from a seeded *rng.Source instead", path, rngPkgPath)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			if !inRNG && (pkgPath == "math/rand" || pkgPath == "math/rand/v2") &&
				fn.Type().(*types.Signature).Recv() == nil && !seedFuncs[pkgPath][name] {
				pass.Reportf(call.Pos(), "%s.%s draws from the global math/rand stream; use a seeded *rng.Source from %s", pathBase(pkgPath), name, rngPkgPath)
			}
			if seedFuncs[pkgPath][name] && callsTimeNow(pass, call) {
				pass.Reportf(call.Pos(), "%s.%s seeded from time.Now(); wall-clock seeds are not replayable, record an explicit seed", pathBase(pkgPath), name)
			}
			return true
		})
	}
	return nil
}

// calledFunc resolves the called package-level function or method, if any.
func calledFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// callsTimeNow reports whether a time.Now call appears in call's arguments.
func callsTimeNow(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calledFunc(pass, c); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
			}
			return !found
		})
		if found {
			break
		}
	}
	return found
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
