// Package a exercises the ctxflow analyzer: re-rooting, dropped
// contexts, and struct-field stores.
package a

import "context"

func run(ctx context.Context) { _ = ctx }

type worker struct {
	drain context.Context // declaring the field is fine; stores are flagged
	n     int
}

// --- rule A: no re-rooting while a context is in scope ---

func reroot(ctx context.Context) {
	run(context.Background()) // want `context.Background\(\) re-roots cancellation although ctx is in scope; thread ctx instead`
}

func rerootTODO(ctx context.Context) {
	run(context.TODO()) // want `context.TODO\(\) re-roots cancellation although ctx is in scope; thread ctx instead`
}

// noScope has no context in scope, so rooting at Background is the only
// option and is fine.
func noScope() {
	run(context.Background())
}

func inheritsScope(ctx context.Context) {
	f := func() {
		run(context.Background()) // want `context.Background\(\) re-roots cancellation although ctx is in scope; thread ctx instead`
	}
	f()
}

func bindsOwn(ctx context.Context) {
	f := func(inner context.Context) {
		run(context.Background()) // want `context.Background\(\) re-roots cancellation although inner is in scope; thread inner instead`
	}
	f(ctx)
}

type solver struct {
	run context.Context
	n   int
}

// DoContext is the context-aware variant rule B resolves siblings
// against.
func (s *solver) DoContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Do is the sanctioned ctxpair delegate: Background as the first argument
// of DoContext is exempt from rule A even though s.run is in scope.
func (s *solver) Do(n int) int {
	return s.DoContext(context.Background(), n)
}

func (s *solver) rerootFromField() {
	run(context.Background()) // want `context.Background\(\) re-roots cancellation although s.run is in scope; thread s.run instead`
}

// --- rule B: no dropping a context when a Context sibling exists ---

// probe mirrors the serving-layer regression: a method whose receiver
// carries a drain context calls the plain variant of a context-aware API,
// so a draining daemon cannot cancel the work.
func (s *solver) probe() int {
	return s.Do(1) // want `call to Do drops s\.run; call DoContext and pass it`
}

func (s *solver) probeFixed() int {
	return s.DoContext(s.run, 1)
}

func Fetch(n int) int { return n }

func FetchContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

func dropsCtx(ctx context.Context) int {
	return Fetch(1) // want `call to Fetch drops ctx; call FetchContext and pass it`
}

func threadsCtx(ctx context.Context) int {
	return FetchContext(ctx, 1)
}

// callerWithoutScope may call the plain variant: there is no context to
// drop.
func callerWithoutScope() int {
	return Fetch(1)
}

// --- rule C: no storing contexts in struct fields ---

func storeInComposite(ctx context.Context) *worker {
	return &worker{drain: ctx, n: 1} // want `context stored in struct field drain; pass it per call instead of pinning a lifetime`
}

func storeByAssign(w *worker, ctx context.Context) {
	w.drain = ctx // want `context stored in struct field w\.drain; pass it per call instead of pinning a lifetime`
}

// nilFallback is flagged by design: the nil-guard re-root is legitimate
// in a few audited constructors, which carry reasoned lint:ignore
// directives instead of a blanket exemption.
func nilFallback(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() // want `context.Background\(\) re-roots cancellation although ctx is in scope; thread ctx instead`
	}
	run(ctx)
}
