package ctxflow_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", "a", ctxflow.Analyzer)
}
