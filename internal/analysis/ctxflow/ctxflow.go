// Package ctxflow enforces the repo's cancellation discipline: when a
// context.Context is in scope it must reach every context-accepting
// callee, instead of being dropped or re-rooted. Three rules:
//
//   - rule A (no re-rooting): calling context.Background() or
//     context.TODO() while a context is in scope — a parameter, or a
//     context field on the method's receiver — severs the cancellation
//     chain. The one sanctioned shape is the ctxpair delegate: a function
//     Foo whose body calls FooContext(context.Background(), ...), the
//     back-compat sugar PR 1 standardized.
//   - rule B (no dropping): with a context in scope, calling Foo(...)
//     when a FooContext sibling exists (same package for functions, same
//     receiver type for methods, context first parameter) silently
//     discards cancellation — a draining daemon cannot stop the work.
//     This is the shape that made instance builds and breaker probes
//     uncancellable in the serving layer.
//   - rule C (no storing): writing a context.Context into a struct field
//     (composite literal entry or field assignment) detaches its
//     lifetime from the call that created it. Stored lifetime scopes are
//     legitimate in a few audited places — each carries a reasoned
//     lint:ignore.
//
// Function literals inherit the enclosing scope's context unless they
// bind their own context parameter. Test files are exempt.
//
// Known unsoundness is documented in DESIGN.md §12: rule B only sees
// statically resolvable callees, and rule C does not track contexts
// laundered through interfaces or maps.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"lcrb/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require in-scope contexts to reach context-accepting callees; forbid re-rooting and struct storage",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body, scopeContext(pass, fd), fd.Name.Name)
		}
	}
	return nil
}

// checkBody walks one function body. ctxName is the in-scope context's
// printed form ("" when none); fnName is the enclosing declared function's
// name, used for the delegate exemption. Function literals recurse with
// their own context parameter when they bind one.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctxName, fnName string) {
	exempt := delegateExemptions(pass, body, fnName)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxName
			if name := paramContext(pass, n.Type); name != "" {
				inner = name
			}
			checkBody(pass, n.Body, inner, fnName)
			return false
		case *ast.CallExpr:
			if which := rootCallName(pass, n); which != "" && ctxName != "" && !exempt[n] {
				pass.Reportf(n.Pos(), "context.%s() re-roots cancellation although %s is in scope; thread %s instead", which, ctxName, ctxName)
			}
			if ctxName != "" {
				checkDroppedContext(pass, n, ctxName)
			}
		case *ast.CompositeLit:
			checkCompositeStore(pass, n)
		case *ast.AssignStmt:
			checkFieldStore(pass, n)
		}
		return true
	})
}

// scopeContext names the context in scope inside fd: the first
// context.Context parameter, else a context-typed field on the receiver.
func scopeContext(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if name := paramContext(pass, fd.Type); name != "" {
		return name
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	recvName := fd.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return ""
	}
	obj := pass.TypesInfo.ObjectOf(fd.Recv.List[0].Names[0])
	if obj == nil {
		return ""
	}
	t := obj.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return recvName + "." + st.Field(i).Name()
		}
	}
	return ""
}

// paramContext returns the name of ft's first context.Context parameter.
func paramContext(pass *analysis.Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, f := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range f.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// delegateExemptions finds context.Background()/TODO() calls sitting in
// the sanctioned delegate position: the first argument of a call to
// <fnName>Context.
func delegateExemptions(pass *analysis.Pass, body *ast.BlockStmt, fnName string) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	if fnName == "" {
		return exempt
	}
	want := fnName + "Context"
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Name() != want {
			return true
		}
		if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok && rootCallName(pass, inner) != "" {
			exempt[inner] = true
		}
		return true
	})
	return exempt
}

// rootCallName matches call as context.Background() or context.TODO(),
// returning the function name ("" otherwise).
func rootCallName(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// checkDroppedContext flags a call to Foo when a FooContext sibling with a
// context first parameter exists: with ctxName in scope the plain variant
// silently drops cancellation.
func checkDroppedContext(pass *analysis.Pass, call *ast.CallExpr, ctxName string) {
	callee := calleeFunc(pass, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	name := callee.Name()
	if strings.HasSuffix(name, "Context") {
		return
	}
	if callee.Pkg().Path() == "context" {
		return
	}
	sibling := findSibling(callee)
	if sibling == nil || !firstParamIsContext(sibling) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s drops %s; call %sContext and pass it", name, ctxName, name)
}

// findSibling locates the FooContext counterpart of callee: a method on
// the same receiver type, or a function in the same package.
func findSibling(callee *types.Func) *types.Func {
	want := callee.Name() + "Context"
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		obj, _, _ := types.LookupFieldOrMethod(sig.Recv().Type(), true, callee.Pkg(), want)
		fn, _ := obj.(*types.Func)
		return fn
	}
	fn, _ := callee.Pkg().Scope().Lookup(want).(*types.Func)
	return fn
}

// firstParamIsContext reports whether fn's first parameter is a
// context.Context.
func firstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	return params.Len() > 0 && isContextType(params.At(0).Type())
}

// checkCompositeStore flags context-typed values stored in struct
// composite literals (rule C).
func checkCompositeStore(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range lit.Elts {
		value := elt
		field := ""
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = id.Name
			}
		}
		vt, ok := pass.TypesInfo.Types[value]
		if !ok || !isContextType(vt.Type) {
			continue
		}
		if field == "" {
			field = "(positional)"
		}
		pass.Reportf(elt.Pos(), "context stored in struct field %s; pass it per call instead of pinning a lifetime", field)
	}
}

// checkFieldStore flags assignments of context-typed values into struct
// fields (rule C).
func checkFieldStore(pass *analysis.Pass, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || i >= len(assign.Rhs) {
			continue
		}
		if _, isField := pass.TypesInfo.Selections[sel]; !isField {
			continue
		}
		vt, ok := pass.TypesInfo.Types[assign.Rhs[i]]
		if !ok || !isContextType(vt.Type) {
			continue
		}
		pass.Reportf(assign.Pos(), "context stored in struct field %s; pass it per call instead of pinning a lifetime", types.ExprString(sel))
	}
}

// calleeFunc resolves a call's target to a declared function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
