// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports position-anchored Diagnostics,
// optionally carrying mechanical SuggestedFixes.
//
// The repo cannot vendor x/tools, so this package mirrors the upstream API
// shape closely enough that the analyzers under internal/analysis/... read
// like stock go/analysis passes and could be ported to the real driver by
// changing imports. Only the subset the lcrblint suite needs is provided.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lcrb/internal/analysis/dataflow"
)

// Analyzer describes one static check. Run is invoked once per loaded
// package with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:ignore
	// directives. It must be a valid identifier.
	Name string
	// Doc is the help text shown by lcrblint -help.
	Doc string
	// Run executes the check. It reports findings through pass.Report and
	// returns an error only for internal failures, not for findings.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
	// Facts is this analyzer's cross-package summary store. The driver
	// shares one store per analyzer across every package in the run and
	// visits packages in dependency order, so facts exported while
	// analyzing a package are visible to its importers (the go/analysis
	// facts mechanism, keyed by (*types.Func).FullName()). May be nil when
	// the driver does not support facts; analyzers must tolerate that.
	Facts *dataflow.FactStore
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to source positions.
type Diagnostic struct {
	Pos token.Pos
	// End optionally marks the end of the flagged region; token.NoPos
	// means "just Pos".
	End      token.Pos
	Message  string
	Category string
	// SuggestedFixes holds mechanical rewrites the driver can apply with
	// -fix. Fixes must leave the file compiling.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a set of text edits that resolves a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// IgnoreDirective is the comment prefix that suppresses a diagnostic:
//
//	//lint:ignore <name>[,<name>...] <reason>
//
// placed either on the flagged line or alone on the line directly above it.
// <name> is an analyzer name or "all"; the reason is mandatory so the
// suppression documents itself.
const IgnoreDirective = "//lint:ignore"

// Suppressed reports whether a diagnostic produced by the named analyzer at
// pos is silenced by a lint:ignore directive in file.
func Suppressed(fset *token.FileSet, file *ast.File, analyzer string, pos token.Pos) bool {
	_, ok := SuppressingDirective(fset, file, analyzer, pos)
	return ok
}

// SuppressingDirective returns the position of the lint:ignore directive
// that silences a diagnostic from the named analyzer at pos, if one exists
// in file. Drivers use the position to track which directives actually
// fired, so the -ignores audit can flag stale suppressions.
func SuppressingDirective(fset *token.FileSet, file *ast.File, analyzer string, pos token.Pos) (token.Pos, bool) {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			names, _, ok := parseIgnore(c.Text)
			if !ok {
				continue
			}
			cline := fset.Position(c.Pos()).Line
			if cline != line && cline != line-1 {
				continue
			}
			for _, n := range names {
				if n == "all" || n == analyzer {
					return c.Pos(), true
				}
			}
		}
	}
	return token.NoPos, false
}

// Ignore describes one lint:ignore directive found in a file, well-formed
// or not: Reason is empty when the directive lacks one (such directives
// suppress nothing, and the -ignores audit flags them).
type Ignore struct {
	// Pos is the directive comment's position.
	Pos token.Pos
	// Names lists the analyzer names the directive targets ("all" included
	// verbatim).
	Names []string
	// Reason is the free-text justification after the names; empty for
	// malformed directives.
	Reason string
}

// Ignores collects every lint:ignore directive in file, in source order.
func Ignores(file *ast.File) []Ignore {
	var out []Ignore
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				out = append(out, Ignore{Pos: c.Pos()})
				continue
			}
			names := strings.Split(fields[0], ",")
			reason := strings.TrimSpace(strings.Join(fields[1:], " "))
			out = append(out, Ignore{Pos: c.Pos(), Names: names, Reason: reason})
		}
	}
	return out
}

// parseIgnore extracts the analyzer names and reason of a well-formed
// ignore directive. Directives without a reason are ignored (not honored),
// so a bare "//lint:ignore mapiter" still fails the build.
func parseIgnore(text string) (names []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, IgnoreDirective)
	if !found {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one word of reason
		return nil, "", false
	}
	return strings.Split(fields[0], ","), strings.Join(fields[1:], " "), true
}
