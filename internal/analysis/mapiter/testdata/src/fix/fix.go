// Package fix exercises the mapiter suggested fix: when the loop shape is
// mechanical (plain map identifier, ordered key type, sort imported) the
// diagnostic carries the sorted-keys rewrite.
package fix

import "sort"

func weightedLen(m map[string]float64) float64 {
	var total float64
	for k, v := range m { // want `iterating over map m feeds order-sensitive accumulation`
		total += v * float64(len(k))
	}
	return total
}

// sortedCopy keeps the sort import in use before the fix is applied.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
