// Package a exercises the mapiter analyzer: map ranges feeding
// order-sensitive accumulation are flagged; sorted, per-key, or integer
// uses are not.
package a

import "sort"

// louvainGain reproduces the PR-1 Louvain bug shape: a float aggregate
// built by scanning a map in runtime order differs in its last bits
// between runs, so argmax ties broke differently run to run.
func louvainGain(neighWeight map[int32]float64) float64 {
	var total float64
	for _, w := range neighWeight { // want `iterating over map neighWeight feeds order-sensitive accumulation \(float accumulation into total\); range over sorted keys instead`
		total += w
	}
	return total
}

// unsortedKeys leaks the map order through the returned slice.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `iterating over map m feeds order-sensitive accumulation \(append into out without a later sort\); range over sorted keys instead`
		out = append(out, k)
	}
	return out
}

// sortedKeys is the sanctioned shape: a later sort launders the order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// perKey accumulates into an indexed target: each key is visited exactly
// once, so the per-element sums are order-independent.
func perKey(m map[string]float64, acc map[string]float64) {
	for k, v := range m {
		acc[k] += v
	}
}

// intSum is exact and commutative; integer accumulation is not flagged.
func intSum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// suppressed documents a deliberate exception with the ignore directive.
func suppressed(m map[int]float64) float64 {
	var t float64
	//lint:ignore mapiter tolerance-checked aggregate, order effects stay below epsilon
	for _, v := range m {
		t += v
	}
	return t
}
