// Package mapiter flags `for range` over a map whose body performs
// order-sensitive accumulation — the exact bug class behind the Louvain
// nondeterminism fixed in PR 1. Go randomizes map iteration order, so a
// float sum (or an append consumed unsorted) fed from a map range differs
// bit-for-bit between runs, which breaks common-random-number σ estimates
// and checkpoint fingerprints.
//
// Two body shapes are order-sensitive:
//
//   - compound floating-point accumulation (`x += v`, `x *= v`, ...) into a
//     variable declared outside the loop: float addition is not
//     associative, so the sum depends on visit order;
//   - `s = append(s, ...)` into an outer slice that no later statement in
//     the enclosing function sorts: the slice's element order leaks the map
//     order to consumers.
//
// Integer accumulation is commutative and exact, so it is not flagged.
// Test files are skipped. Where the rewrite is mechanical (plain map
// operand, ordered key type, `sort` already imported) the diagnostic
// carries a suggested fix that snapshots and sorts the keys first.
package mapiter

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"lcrb/internal/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding order-sensitive accumulation (floats, unsorted appends)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRange(pass, file, rng)
			return true
		})
	}
	return nil
}

// checkMapRange reports order-sensitive accumulation inside one map range.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	var reasons []string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Indexed targets (m[k] += v) are skipped: when every key is
			// visited once the per-element sums are order-independent.
			if len(as.Lhs) == 1 && !containsIndex(as.Lhs[0]) &&
				isFloat(pass.TypesInfo.TypeOf(as.Lhs[0])) && declaredOutside(pass, as.Lhs[0], rng) {
				reasons = append(reasons, fmt.Sprintf("float accumulation into %s", render(pass.Fset, as.Lhs[0])))
			}
		case token.ASSIGN:
			if tgt := appendTarget(pass, as); tgt != nil && declaredOutside(pass, as.Lhs[0], rng) &&
				!sortedAfter(pass, file, rng, tgt) {
				reasons = append(reasons, fmt.Sprintf("append into %s without a later sort", tgt.Name()))
			}
		}
		return true
	})
	if len(reasons) == 0 {
		return
	}
	d := analysis.Diagnostic{
		Pos:     rng.Pos(),
		End:     rng.Body.Lbrace,
		Message: fmt.Sprintf("iterating over map %s feeds order-sensitive accumulation (%s); range over sorted keys instead", render(pass.Fset, rng.X), strings.Join(reasons, "; ")),
	}
	if fix, ok := sortKeysFix(pass, file, rng); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	pass.Report(d)
}

// appendTarget returns the object of s in the statement `s = append(s, ...)`,
// or nil if the statement has another shape.
func appendTarget(pass *analysis.Pass, as *ast.AssignStmt) *types.Var {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(arg) != pass.TypesInfo.ObjectOf(lhs) {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
	return v
}

// declaredOutside reports whether the root variable of expr was declared
// outside the range statement, i.e. the accumulated value survives the loop.
func declaredOutside(pass *analysis.Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether some statement after rng (in any enclosing
// block up to the function boundary) passes tgt to a sort/slices sorting
// function, which launders the map order away.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, tgt *types.Var) bool {
	path := pathTo(file, rng)
	for i := len(path) - 1; i >= 0; i-- {
		if _, ok := path[i].(*ast.FuncLit); ok {
			break
		}
		if _, ok := path[i].(*ast.FuncDecl); ok {
			break
		}
		list := stmtList(path[i])
		if list == nil {
			continue
		}
		// Find the direct child of this block on the path and scan what
		// follows it.
		var child ast.Node
		if i+1 < len(path) {
			child = path[i+1]
		} else {
			child = rng
		}
		after := false
		for _, st := range list {
			if after && sortsVar(pass, st, tgt) {
				return true
			}
			if st == child {
				after = true
			}
		}
	}
	return false
}

// stmtList extracts the statement list of block-like nodes.
func stmtList(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

// sortsVar reports whether stmt contains a call into package sort or
// slices that mentions tgt.
func sortsVar(pass *analysis.Pass, stmt ast.Stmt, tgt *types.Var) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == tgt {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// pathTo returns the chain of AST nodes from root down to target.
func pathTo(root, target ast.Node) []ast.Node {
	var stack, path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if path != nil {
			return false
		}
		stack = append(stack, n)
		if n == target {
			path = append([]ast.Node{}, stack...)
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
	return path
}

// sortKeysFix builds the sort-keys-before-range rewrite when it is
// mechanical: plain identifier map operand, fresh non-blank identifier key
// of an ordered type, and "sort" already imported by the file.
func sortKeysFix(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	var none analysis.SuggestedFix
	if rng.Tok != token.DEFINE {
		return none, false
	}
	mapIdent, ok := rng.X.(*ast.Ident)
	if !ok {
		return none, false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return none, false
	}
	mt, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map)
	if !ok {
		return none, false
	}
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString|types.IsFloat) == 0 {
		return none, false
	}
	if !importsSort(file) {
		return none, false
	}

	keyType := types.TypeString(mt.Key(), func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return p.Name()
	})
	keysName := freshName(pass, file, rng, "keys")

	var b bytes.Buffer
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysName, keyType, mapIdent.Name)
	fmt.Fprintf(&b, "for %s := range %s {\n%s = append(%s, %s)\n}\n", key.Name, mapIdent.Name, keysName, keysName, key.Name)
	fmt.Fprintf(&b, "sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n", keysName, keysName, keysName)
	fmt.Fprintf(&b, "for _, %s := range %s {\n", key.Name, keysName)
	if val, ok := rng.Value.(*ast.Ident); ok && val.Name != "_" {
		fmt.Fprintf(&b, "%s := %s[%s]\n", val.Name, mapIdent.Name, key.Name)
	}
	return analysis.SuggestedFix{
		Message: "snapshot and sort the map keys, then range over the sorted slice",
		TextEdits: []analysis.TextEdit{{
			Pos:     rng.Pos(),
			End:     rng.Body.Lbrace + 1,
			NewText: b.Bytes(),
		}},
	}, true
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type, whose addition is not associative.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// containsIndex reports whether expr contains an index operation.
func containsIndex(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// importsSort reports whether file imports package sort.
func importsSort(file *ast.File) bool {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"sort"` {
			return true
		}
	}
	return false
}

// freshName returns base, or base with a numeric suffix, such that the name
// does not collide with any identifier in the enclosing function.
func freshName(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, base string) string {
	scopeNode := ast.Node(file)
	for _, n := range pathTo(file, rng) {
		if fd, ok := n.(*ast.FuncDecl); ok {
			scopeNode = fd
		}
	}
	used := map[string]bool{}
	ast.Inspect(scopeNode, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	name := base
	for i := 1; used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}

// render prints an expression compactly for diagnostics.
func render(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}
