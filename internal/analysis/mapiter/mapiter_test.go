package mapiter_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/mapiter"
)

func TestDiagnostics(t *testing.T) {
	analysistest.Run(t, "testdata", "a", mapiter.Analyzer)
}

func TestSuggestedFix(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, "testdata", "fix", mapiter.Analyzer)
}
