package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"lcrb/internal/analysis/cfg"
)

func buildCFG(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fn.Body)
}

// intJoinMax is a simple lattice over ints with join = max.
func intProblem(g *cfg.CFG, transfer func(b *cfg.Block, in int) int) *Problem {
	return &Problem{
		Graph:    g,
		Dir:      Forward,
		Boundary: 0,
		Join: func(a, b Fact) Fact {
			x, y := a.(int), b.(int)
			if x > y {
				return x
			}
			return y
		},
		Equal: func(a, b Fact) bool { return a.(int) == b.(int) },
		Transfer: func(b *cfg.Block, in Fact) Fact {
			return transfer(b, in.(int))
		},
	}
}

// TestForwardCount verifies facts propagate along edges: counting the
// number of statements seen on the longest path into each block.
func TestForwardCount(t *testing.T) {
	g := buildCFG(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	res := Solve(intProblem(g, func(b *cfg.Block, in int) int {
		return in + len(b.Nodes)
	}))
	if res.In[g.Entry].(int) != 0 {
		t.Fatalf("entry in = %v, want 0", res.In[g.Entry])
	}
	// Exit's in-fact joins both branches with max; both paths saw the
	// same totals, so the value is deterministic.
	exitIn, ok := res.In[g.Exit]
	if !ok || exitIn == nil {
		t.Fatalf("exit has no fact")
	}
	if exitIn.(int) <= 0 {
		t.Fatalf("exit in = %v, want > 0", exitIn)
	}
}

// TestLoopTerminates verifies the solver reaches a fixpoint on cyclic
// graphs when the transfer function saturates.
func TestLoopTerminates(t *testing.T) {
	g := buildCFG(t, `
for i := 0; i < 3; i++ {
	_ = i
}
_ = 1`)
	const cap = 10
	res := Solve(intProblem(g, func(b *cfg.Block, in int) int {
		out := in + 1
		if out > cap {
			out = cap
		}
		return out
	}))
	for _, b := range g.Blocks {
		if f := res.Out[b]; f != nil && f.(int) > cap {
			t.Fatalf("block %d fact %v exceeds cap", b.Index, f)
		}
	}
	if res.In[g.Exit] == nil {
		t.Fatalf("exit unreachable")
	}
}

// TestUnreachableNil verifies blocks not reached from the boundary keep
// nil facts (code after return).
func TestUnreachableNil(t *testing.T) {
	g := buildCFG(t, `
return
`)
	res := Solve(intProblem(g, func(b *cfg.Block, in int) int { return in }))
	if res.In[g.Exit] == nil {
		t.Fatalf("exit must be reachable via the return edge")
	}
	reachable := 0
	for _, b := range g.Blocks {
		if res.In[b] != nil {
			reachable++
		}
	}
	if reachable == len(g.Blocks) {
		// there must exist at least one synthetic unreachable block
		// (builder starts a fresh block after the return)
		t.Logf("all %d blocks reachable; acceptable only if builder made none after return", len(g.Blocks))
	}
}

// TestBackward runs a backward problem: distance-to-exit in blocks.
func TestBackward(t *testing.T) {
	g := buildCFG(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	p := &Problem{
		Graph:    g,
		Dir:      Backward,
		Boundary: 0,
		Join: func(a, b Fact) Fact {
			x, y := a.(int), b.(int)
			if x > y {
				return x
			}
			return y
		},
		Equal: func(a, b Fact) bool { return a.(int) == b.(int) },
		Transfer: func(b *cfg.Block, in Fact) Fact {
			return in.(int) + 1
		},
	}
	res := Solve(p)
	entryIn := res.In[g.Entry]
	if entryIn == nil {
		t.Fatalf("entry has no backward fact")
	}
	exitIn := res.In[g.Exit]
	if exitIn == nil || exitIn.(int) != 0 {
		t.Fatalf("exit boundary fact = %v, want 0", exitIn)
	}
	if entryIn.(int) <= exitIn.(int) {
		t.Fatalf("entry distance %v should exceed exit %v", entryIn, exitIn)
	}
}

// TestDeterministic runs the same problem twice and requires identical
// facts at every block.
func TestDeterministic(t *testing.T) {
	body := `
for i := 0; i < 3; i++ {
	if i == 1 {
		continue
	}
	_ = i
}
_ = 1`
	run := func() map[int]int {
		g := buildCFG(t, body)
		res := Solve(intProblem(g, func(b *cfg.Block, in int) int {
			out := in + len(b.Nodes)
			if out > 50 {
				out = 50
			}
			return out
		}))
		m := map[int]int{}
		for _, b := range g.Blocks {
			if f := res.In[b]; f != nil {
				m[b.Index] = f.(int)
			}
		}
		return m
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different reachable sets: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("block %d fact differs: %d vs %d", k, v, b[k])
		}
	}
}

func TestFactStore(t *testing.T) {
	s := NewFactStore()
	if _, ok := s.ImportFact("missing"); ok {
		t.Fatalf("empty store should not import")
	}
	s.ExportFact("lcrb/internal/x.F", 42)
	got, ok := s.ImportFact("lcrb/internal/x.F")
	if !ok || got.(int) != 42 {
		t.Fatalf("import = %v, %v", got, ok)
	}
	s.ExportFact("lcrb/internal/x.F", 7)
	got, _ = s.ImportFact("lcrb/internal/x.F")
	if got.(int) != 7 {
		t.Fatalf("overwrite failed: %v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
	var nilStore *FactStore
	nilStore.ExportFact("k", 1) // must not panic
	if _, ok := nilStore.ImportFact("k"); ok {
		t.Fatalf("nil store should import nothing")
	}
}
