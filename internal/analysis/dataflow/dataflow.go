// Package dataflow provides a fixed-point solver for forward and backward
// dataflow problems over the control-flow graphs of internal/analysis/cfg,
// plus a cross-function fact store analyzers use to export summaries (the
// way go/analysis facts work) so intraprocedural analyses can consult
// callee behavior computed earlier in dependency order.
//
// A Problem supplies the lattice operations (Join, Equal), the boundary
// fact for the entry (forward) or exit (backward) block, and a Transfer
// function mapping a block's input fact to its output fact. Solve iterates
// round-robin over the blocks in index order until no fact changes, which
// makes the fixpoint — and therefore every diagnostic derived from it —
// deterministic across runs. Facts are opaque `any` values; nil marks an
// unreachable block, and Transfer is never called with a nil input.
//
// Transfer MUST be pure with respect to reporting: it runs an unbounded
// number of times per block during iteration. Analyzers solve first, then
// make one reporting pass over the stable Result.
package dataflow

import (
	"sort"

	"lcrb/internal/analysis/cfg"
)

// Direction selects forward (facts flow entry→exit along edges) or
// backward (exit→entry against edges) propagation.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Fact is one lattice element. Implementations are immutable values:
// Transfer and Join return new facts, never mutate their arguments.
type Fact = any

// Problem describes one dataflow analysis instance over a single CFG.
type Problem struct {
	Graph *cfg.CFG
	Dir   Direction

	// Boundary is the fact entering the entry block (Forward) or leaving
	// the exit block (Backward). It must be non-nil.
	Boundary Fact

	// Join combines two non-nil facts at a control-flow merge.
	Join func(a, b Fact) Fact

	// Equal reports whether two non-nil facts are the same lattice
	// element; it decides termination, so it must be reflexive and
	// consistent with Join (Join(a,a) must Equal a).
	Equal func(a, b Fact) bool

	// Transfer maps a block's input fact to its output fact. The input is
	// never nil. It must not report diagnostics (it re-runs at every
	// iteration) and must not mutate in.
	Transfer func(b *cfg.Block, in Fact) Fact
}

// Result holds the fixpoint: the fact at each block's input and output
// edge. Blocks never reached from the boundary have nil entries.
type Result struct {
	In  map[*cfg.Block]Fact
	Out map[*cfg.Block]Fact
}

// Solve runs the worklist iteration to fixpoint and returns the stable
// per-block facts. Iteration visits blocks in index order (reverse index
// order for backward problems) repeatedly until a full pass changes
// nothing, so the result is independent of map iteration or scheduling.
func Solve(p *Problem) *Result {
	res := &Result{
		In:  make(map[*cfg.Block]Fact, len(p.Graph.Blocks)),
		Out: make(map[*cfg.Block]Fact, len(p.Graph.Blocks)),
	}
	if p.Graph == nil || len(p.Graph.Blocks) == 0 {
		return res
	}

	boundary := p.Graph.Entry
	if p.Dir == Backward {
		boundary = p.Graph.Exit
	}

	// edgesIn returns the blocks whose facts feed b.
	edgesIn := func(b *cfg.Block) []*cfg.Block {
		if p.Dir == Forward {
			return b.Preds
		}
		return b.Succs
	}

	order := make([]*cfg.Block, len(p.Graph.Blocks))
	copy(order, p.Graph.Blocks)
	if p.Dir == Backward {
		sort.Slice(order, func(i, j int) bool { return order[i].Index > order[j].Index })
	}

	for {
		changed := false
		for _, b := range order {
			// Compute the input fact: boundary for the boundary block,
			// joined over incoming edges otherwise.
			var in Fact
			if b == boundary {
				in = p.Boundary
			}
			for _, src := range edgesIn(b) {
				out := res.Out[src]
				if out == nil {
					continue
				}
				if in == nil {
					in = out
				} else {
					in = p.Join(in, out)
				}
			}
			if in == nil {
				continue // unreachable so far
			}
			old := res.In[b]
			if old == nil || !p.Equal(old, in) {
				res.In[b] = in
				out := p.Transfer(b, in)
				oldOut := res.Out[b]
				if oldOut == nil || !p.Equal(oldOut, out) {
					res.Out[b] = out
					changed = true
				}
			}
		}
		if !changed {
			return res
		}
	}
}

// FactStore carries per-function summaries across packages analyzed in
// dependency order. Keys are (*types.Func).FullName() strings — stable,
// package-qualified — and values are analyzer-defined summary types. A
// checker creates one store per analyzer and shares it across every
// package in the run, so facts exported while analyzing lcrb/internal/x
// are visible when analyzing its importers.
//
// FactStore is not safe for concurrent use; the checker runs packages
// sequentially (dependency order requires it anyway).
type FactStore struct {
	facts map[string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[string]any)}
}

// ExportFact records a summary for the function named by key (use
// (*types.Func).FullName()). A second export for the same key overwrites
// the first.
func (s *FactStore) ExportFact(key string, fact any) {
	if s == nil {
		return
	}
	s.facts[key] = fact
}

// ImportFact returns the summary exported for key, or nil, false.
func (s *FactStore) ImportFact(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	f, ok := s.facts[key]
	return f, ok
}

// Len reports how many facts the store holds (for tests and diagnostics).
func (s *FactStore) Len() int {
	if s == nil {
		return 0
	}
	return len(s.facts)
}
