// Package a exercises the goroleak analyzer: every accepted join idiom
// has a clean case, every violation a `// want` expectation.
package a

import (
	"context"
	"sync"
)

// ResponseWriter mirrors net/http's interface by name: goroleak's capture
// check is name-based so testdata does not need to type-check net/http.
type ResponseWriter interface {
	Write([]byte) (int, error)
}

func serve() error { return nil }
func shutdown()    {}

// --- fire-and-forget ---

func fireAndForget() {
	go func() { // want `goroutine is not joined: no WaitGroup, channel join, or ctx.Done scope releases it`
		println("x")
	}()
}

func startHelper() {
	go helper() // want `goroutine is not joined`
}

func helper() {
	println("x")
}

func handler(w ResponseWriter) {
	go func() { // want `goroutine is not joined: .*captures ResponseWriter w`
		w.Write([]byte("late"))
	}()
}

func lockCapture(mu *sync.Mutex) {
	go func() { // want `goroutine is not joined: .*captures mutex mu`
		mu.Lock()
		mu.Unlock()
	}()
}

// --- WaitGroup idiom ---

func wgProper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func wgDeferredWait() {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func wgMissingWaitOnPath(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine joins wg but wg.Wait\(\) is not reached on every path after the launch`
		defer wg.Done()
	}()
	if cond {
		return
	}
	wg.Wait()
}

type owner struct {
	wg sync.WaitGroup
}

// launch hands the join to the owner: a field WaitGroup with Add before
// the go statement is joined by whoever drains the owner.
func (o *owner) launch() {
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
	}()
}

func (o *owner) drain() {
	o.wg.Wait()
}

// lead decrements the owner's WaitGroup, so `go o.lead()` after
// o.wg.Add(1) is joined via the callee summary.
func (o *owner) lead() {
	defer o.wg.Done()
}

func (o *owner) startLead() {
	o.wg.Add(1)
	go o.lead()
}

// nested launches from inside a closure; the WaitGroup is captured from
// the enclosing function, which owns the join.
func nested() {
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	launch()
	wg.Wait()
}

// --- channel join idiom ---

func chanJoined() error {
	errc := make(chan error, 1)
	go func() {
		errc <- serve()
	}()
	return <-errc
}

// selectOneArm is the regression shape for the daemon drain path that
// dropped Serve's error: the select receives serveErr on only one arm, so
// the cancellation arm abandons the sender and its result.
func selectOneArm(ctx context.Context) {
	serveErr := make(chan error, 1)
	go func() { // want `goroutine sends on serveErr but no receive from serveErr covers every path after the launch`
		serveErr <- serve()
	}()
	select {
	case <-serveErr:
	case <-ctx.Done():
		shutdown()
	}
}

// selectBothArms is the fixed shape: the cancellation arm receives the
// send after shutdown, so every path joins the goroutine.
func selectBothArms(ctx context.Context) {
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve()
	}()
	select {
	case <-serveErr:
	case <-ctx.Done():
		shutdown()
		<-serveErr
	}
}

func produce(out chan<- int) {
	out <- 1
}

func startProduce() {
	results := make(chan int)
	go produce(results)
	<-results
}

func startProduceLeak(cond bool) {
	results := make(chan int)
	go produce(results) // want `goroutine sends on results but no receive from results covers every path after the launch`
	if cond {
		return
	}
	<-results
}

// escapeTransfersOwnership hands the channel to another function; the
// receiver is assumed to live there (documented unsoundness).
func escapeTransfersOwnership() {
	results := make(chan int)
	go func() {
		results <- 1
	}()
	consume(results)
}

func consume(<-chan int) {}

// --- context scope idiom ---

func ctxScoped(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func ctxSelectScoped(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// --- receiver release idiom ---

// recvReleased returns a stop func that closes the watcher's channel; the
// close inside the nested literal releases the receiver.
func recvReleased() func() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	return func() { close(done) }
}

func recvLeaked() {
	done := make(chan struct{})
	go func() { // want `goroutine receives from done but nothing closes done in the launching function`
		<-done
	}()
	_ = done
}
