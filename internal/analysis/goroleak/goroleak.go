// Package goroleak verifies that every goroutine the repo launches is
// provably joined or scoped: a `go` statement must be covered by a
// recognized ownership idiom, otherwise it is a fire-and-forget goroutine
// that can outlive its caller, leak, or drop its result.
//
// Accepted idioms, checked against the launching function's CFG
// (internal/analysis/cfg) with a must-join dataflow pass
// (internal/analysis/dataflow):
//
//   - context scope: the goroutine body (or the named callee, via a
//     cross-function fact) waits on some ctx.Done(), so a drain or
//     hard-cancel context bounds its lifetime;
//   - WaitGroup: the body (or callee) calls wg.Done() for a WaitGroup
//     with wg.Add(...) before the launch; a WaitGroup local to the
//     launching function must additionally reach wg.Wait() on every path
//     after the launch, while a captured or field WaitGroup is accepted
//     as joined by its owner;
//   - channel join: the body sends on a channel that either escapes the
//     launching function (ownership transferred) or is received from on
//     every path after the launch — a select that receives the channel on
//     only one arm does not count, which is exactly the shape that drops
//     a server's Serve error during drain;
//   - receiver release: a body that only receives is released when the
//     launching function closes one of those channels (including from
//     nested function literals, e.g. a returned stop func).
//
// Fire-and-forget goroutines are flagged, with extra detail when the body
// captures an http.ResponseWriter (the handler may return first) or a
// mutex. Test files are exempt: the testing harness joins subtests.
//
// Known unsoundness is documented in DESIGN.md §12: Add-before-launch is
// source-order, channel escape is syntactic, and callee summaries are
// matched by idiom rather than by identity.
package goroleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"lcrb/internal/analysis"
	"lcrb/internal/analysis/cfg"
	"lcrb/internal/analysis/dataflow"
)

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "require every goroutine to be joined via WaitGroup/channel ownership or scoped by a ctx.Done wait",
	Run:  run,
}

// Summary is the cross-function fact goroleak exports per function: the
// join-relevant behavior of its body, consulted when the function is the
// direct callee of a go statement.
type Summary struct {
	// DecrementsWG reports that the body calls Done() on some
	// sync.WaitGroup (deferred or not).
	DecrementsWG bool
	// WaitsOnDone reports that the body waits on some context's Done
	// channel, i.e. the goroutine is cancellation-scoped.
	WaitsOnDone bool
	// SendsOnParam lists the indices of channel parameters the body sends
	// on, so the launch site can map them back to argument expressions.
	SendsOnParam []int
}

// mustState is the lattice for the every-path join analysis.
type mustState int

const (
	notLaunched mustState = iota // launch not yet reached
	joined                       // launched and joined on this path
	pending                      // launched, join still outstanding
)

func run(pass *analysis.Pass) error {
	// Pass 1: export a Summary fact for every function declaration, so
	// `go f(...)` launches — here and in importing packages — can consult
	// the callee's body.
	local := map[*types.Func]Summary{}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			sum := summarize(pass, fd)
			local[fn] = sum
			if pass.Facts != nil {
				pass.Facts.ExportFact(fn.FullName(), sum)
			}
		}
	}

	// Pass 2: check every go statement in every function body. Function
	// literals are analyzed as functions of their own, so a launch inside
	// a closure is checked against that closure's control flow.
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, fb := range functionBodies(file) {
			checkFunction(pass, fb, local)
		}
	}
	return nil
}

// fnBody is one function-shaped body to analyze: a declaration or a
// function literal.
type fnBody struct {
	name string
	body *ast.BlockStmt
}

// functionBodies collects every function declaration and function literal
// in file, in source order.
func functionBodies(file *ast.File) []fnBody {
	var out []fnBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, fnBody{n.Name.Name, n.Body})
			}
		case *ast.FuncLit:
			out = append(out, fnBody{"func literal", n.Body})
		}
		return true
	})
	return out
}

func checkFunction(pass *analysis.Pass, fb fnBody, local map[*types.Func]Summary) {
	graph := cfg.New(fb.body)
	for _, blk := range graph.Blocks {
		for _, node := range blk.Nodes {
			g, ok := node.(*ast.GoStmt)
			if !ok {
				continue
			}
			checkLaunch(pass, fb, graph, g, local)
		}
	}
}

// checkLaunch classifies one go statement against the accepted idioms and
// reports when none covers it.
func checkLaunch(pass *analysis.Pass, fb fnBody, graph *cfg.CFG, g *ast.GoStmt, local map[*types.Func]Summary) {
	var body ast.Node // goroutine body to scan; nil for opaque callees
	var sum Summary
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
		sum = summarizeBody(pass, lit.Body)
	} else if callee := calleeFunc(pass, g.Call); callee != nil {
		if s, ok := local[callee]; ok {
			sum = s
		} else if pass.Facts != nil {
			if f, ok := pass.Facts.ImportFact(callee.FullName()); ok {
				if s, ok := f.(Summary); ok {
					sum = s
				}
			}
		}
	}

	// Idiom 1: cancellation scope — the body waits on some ctx.Done().
	if sum.WaitsOnDone {
		return
	}

	// Idiom 2: WaitGroup. Collect the WaitGroups the body decrements; the
	// launch is joined when Add precedes the launch (or the WaitGroup is
	// owned outside this function) and, for a function-local WaitGroup,
	// Wait() is reached on every path after the launch.
	wgKeys := map[string]ast.Expr{}
	if body != nil {
		scanPruned(body, func(n ast.Node) bool {
			if recv, ok := methodReceiver(pass, n, "Done", isWaitGroup); ok {
				wgKeys[types.ExprString(recv)] = recv
			}
			return true
		})
	}
	addBefore := addsBefore(pass, fb.body, g.Pos())
	if sum.DecrementsWG && len(wgKeys) == 0 && len(addBefore) > 0 {
		// Named callee decrements a WaitGroup we cannot name from here
		// (e.g. a field of its receiver); the Add-before-launch pairing is
		// the evidence that this launch participates in that ownership.
		return
	}
	for _, key := range sortedKeys(wgKeys) {
		recv := wgKeys[key]
		ownedHere := isLocalExpr(pass, fb.body, recv)
		if !ownedHere {
			// Captured or field WaitGroup: the owner joins it elsewhere
			// (Group.Wait, server drain), Add-before is still required
			// when the Add is visible here.
			return
		}
		if _, ok := addBefore[key]; !ok {
			continue
		}
		if mustJoin(graph, g, func(n ast.Node) bool {
			recv2, ok := methodReceiver(pass, n, "Wait", isWaitGroup)
			return ok && types.ExprString(recv2) == key
		}) {
			return
		}
		pass.Reportf(g.Pos(), "goroutine joins %s but %s.Wait() is not reached on every path after the launch", key, key)
		return
	}

	// Idiom 3: channel join — the body sends on a channel that escapes or
	// is received on every path after the launch.
	sendKeys := map[string]ast.Expr{}
	if body != nil {
		scanPruned(body, func(n ast.Node) bool {
			if send, ok := n.(*ast.SendStmt); ok {
				sendKeys[types.ExprString(send.Chan)] = send.Chan
			}
			return true
		})
	}
	for _, idx := range sum.SendsOnParam {
		if idx < len(g.Call.Args) {
			arg := g.Call.Args[idx]
			sendKeys[types.ExprString(arg)] = arg
		}
	}
	if len(sendKeys) > 0 {
		for key, ch := range sendKeys {
			if !isLocalExpr(pass, fb.body, ch) || chanEscapes(fb.body, key, g.Call) {
				return
			}
			if mustJoin(graph, g, func(n ast.Node) bool { return receivesFrom(n, key) }) {
				return
			}
		}
		// Deterministic key for the message: the smallest.
		key := ""
		for k := range sendKeys {
			if key == "" || k < key {
				key = k
			}
		}
		pass.Reportf(g.Pos(), "goroutine sends on %s but no receive from %s covers every path after the launch", key, key)
		return
	}

	// Idiom 4: receiver release — a receive-only body is released when the
	// launching function closes one of its channels (anywhere, including
	// nested function literals such as a returned stop func).
	recvKeys := map[string]ast.Expr{}
	if body != nil {
		scanPruned(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					recvKeys[types.ExprString(n.X)] = n.X
				}
			case *ast.RangeStmt:
				if isChan(pass, n.X) {
					recvKeys[types.ExprString(n.X)] = n.X
				}
			}
			return true
		})
	}
	if len(recvKeys) > 0 {
		for key, ch := range recvKeys {
			if !isLocalExpr(pass, fb.body, ch) {
				return
			}
			if closesChan(fb.body, key) {
				return
			}
		}
		key := ""
		for k := range recvKeys {
			if key == "" || k < key {
				key = k
			}
		}
		pass.Reportf(g.Pos(), "goroutine receives from %s but nothing closes %s in the launching function", key, key)
		return
	}

	// No idiom applies: fire-and-forget. Name the riskiest capture.
	msg := "goroutine is not joined: no WaitGroup, channel join, or ctx.Done scope releases it"
	if body != nil {
		if name, ok := capturesResponseWriter(pass, body); ok {
			msg += fmt.Sprintf("; it captures ResponseWriter %s (the handler may return first)", name)
		} else if name, ok := capturesMutex(pass, body); ok {
			msg += fmt.Sprintf("; it captures mutex %s", name)
		}
	}
	pass.Reportf(g.Pos(), "%s", msg)
}

// mustJoin solves the every-path join problem: after the launch, does
// every path to Exit pass a node isJoin accepts? Deferred joins count,
// since they run at exit on the paths that registered them.
func mustJoin(graph *cfg.CFG, launch *ast.GoStmt, isJoin func(ast.Node) bool) bool {
	prob := &dataflow.Problem{
		Graph:    graph,
		Dir:      dataflow.Forward,
		Boundary: notLaunched,
		Join: func(a, b dataflow.Fact) dataflow.Fact {
			x, y := a.(mustState), b.(mustState)
			if x > y {
				return x
			}
			return y
		},
		Equal: func(a, b dataflow.Fact) bool { return a.(mustState) == b.(mustState) },
		Transfer: func(blk *cfg.Block, in dataflow.Fact) dataflow.Fact {
			st := in.(mustState)
			for _, n := range blk.Nodes {
				if n == launch {
					st = pending
					continue
				}
				if st == pending && nodeHas(n, isJoin) {
					st = joined
				}
			}
			return st
		},
	}
	res := dataflow.Solve(prob)
	at := res.In[graph.Exit]
	if at == nil || at.(mustState) != pending {
		return true
	}
	for _, d := range graph.Defers {
		if nodeHas(d, isJoin) {
			return true
		}
	}
	return false
}

// summarize computes the Summary for a declared function.
func summarize(pass *analysis.Pass, fd *ast.FuncDecl) Summary {
	sum := summarizeBody(pass, fd.Body)
	// Map sends back to channel-typed parameters.
	var params []*ast.Ident
	for _, f := range fd.Type.Params.List {
		params = append(params, f.Names...)
	}
	scanPruned(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(send.Chan).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		for i, p := range params {
			if obj != nil && pass.TypesInfo.ObjectOf(p) == obj {
				sum.SendsOnParam = append(sum.SendsOnParam, i)
			}
		}
		return true
	})
	return sum
}

// summarizeBody computes the body-shape part of a Summary (WaitGroup
// decrements and ctx.Done waits), pruning nested function literals.
func summarizeBody(pass *analysis.Pass, body *ast.BlockStmt) Summary {
	var sum Summary
	scanPruned(body, func(n ast.Node) bool {
		if _, ok := methodReceiver(pass, n, "Done", isWaitGroup); ok {
			sum.DecrementsWG = true
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCtxDoneCall(pass, n.X) {
				sum.WaitsOnDone = true
			}
		case *ast.RangeStmt:
			if isCtxDoneCall(pass, n.X) {
				sum.WaitsOnDone = true
			}
		case *ast.CommClause:
			if n.Comm != nil {
				ast.Inspect(n.Comm, func(m ast.Node) bool {
					if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW && isCtxDoneCall(pass, u.X) {
						sum.WaitsOnDone = true
					}
					return true
				})
			}
		}
		return true
	})
	return sum
}

// addsBefore returns the WaitGroup keys with an Add(...) call lexically
// before pos in body (nested function literals excluded).
func addsBefore(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos) map[string]bool {
	out := map[string]bool{}
	scanPruned(body, func(n ast.Node) bool {
		if n.Pos() >= pos {
			return true
		}
		if recv, ok := methodReceiver(pass, n, "Add", isWaitGroup); ok {
			out[types.ExprString(recv)] = true
		}
		return true
	})
	return out
}

// methodReceiver matches n as a call expr recv.<name>() whose receiver
// type wantType accepts, returning the receiver expression.
func methodReceiver(pass *analysis.Pass, n ast.Node, name string, wantType func(types.Type) bool) (ast.Expr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !wantType(tv.Type) {
		return nil, false
	}
	return sel.X, true
}

// isWaitGroup reports whether t is sync.WaitGroup or a pointer to it.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isCtxDoneCall reports whether expr is x.Done() for a context.Context x.
func isCtxDoneCall(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return isContextType(tv.Type)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isChan reports whether expr has channel type.
func isChan(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// calleeFunc resolves a call's target to a declared function or method.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// isLocalExpr reports whether expr's root object is declared inside body —
// i.e. this function owns it, as opposed to a parameter, capture, field or
// package-level variable.
func isLocalExpr(pass *analysis.Pass, body *ast.BlockStmt, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false // selector (field) or more complex: owned elsewhere
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() < body.End()
}

// chanEscapes reports whether the channel named by key is handed to other
// code in body: passed as a call argument (close/len/cap excluded),
// returned, stored in a composite literal, or assigned into a field. The
// launching call itself is excluded — handing the channel to the goroutine
// under scrutiny is not an ownership transfer. The check is syntactic on
// the expression's printed form.
func chanEscapes(body *ast.BlockStmt, key string, launchCall *ast.CallExpr) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == launchCall {
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "close", "len", "cap", "make":
					return true
				}
			}
			for _, arg := range n.Args {
				if exprContainsKey(arg, key) {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if exprContainsKey(r, key) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if exprContainsKey(e, key) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && i < len(n.Rhs) && exprContainsKey(n.Rhs[i], key) {
					escaped = true
				}
			}
		}
		return true
	})
	return escaped
}

// exprContainsKey reports whether expr contains an identifier path whose
// printed form equals key (receive and send operators stripped).
func exprContainsKey(expr ast.Expr, key string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW && types.ExprString(u.X) == key {
				return false // a receive uses the chan, it doesn't move it
			}
			if types.ExprString(e) == key {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// closesChan reports whether body contains close(<key>) anywhere,
// including nested function literals (a returned stop closure is a valid
// releaser).
func closesChan(body *ast.BlockStmt, key string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" &&
			types.ExprString(call.Args[0]) == key {
			found = true
		}
		return !found
	})
	return found
}

// receivesFrom reports whether node n receives from the channel named by
// key: a unary receive, a range over it, or a select clause receiving it.
func receivesFrom(n ast.Node, key string) bool {
	switch n := n.(type) {
	case *cfg.RangeHead:
		return types.ExprString(n.Range.X) == key
	case *cfg.SelectHead:
		return false // the clause CommHeads carry the receives
	case *cfg.CommHead:
		if n.Clause.Comm == nil {
			return false
		}
		return astHasRecv(n.Clause.Comm, key)
	default:
		return astHasRecv(n, key)
	}
}

// astHasRecv reports whether n contains <-key outside nested function
// literals.
func astHasRecv(n ast.Node, key string) bool {
	found := false
	scanPruned(n, func(m ast.Node) bool {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW && types.ExprString(u.X) == key {
			found = true
		}
		return !found
	})
	return found
}

// nodeHas applies pred to a CFG node, handling the cfg wrapper types that
// plain ast.Inspect cannot traverse.
func nodeHas(n ast.Node, pred func(ast.Node) bool) bool {
	switch n := n.(type) {
	case *cfg.RangeHead, *cfg.SelectHead, *cfg.CommHead:
		return pred(n)
	}
	found := false
	scanPruned(n, func(m ast.Node) bool {
		if pred(m) {
			found = true
		}
		return !found
	})
	return found
}

// sortedKeys returns m's keys in lexical order, for deterministic
// iteration where report order matters.
func sortedKeys(m map[string]ast.Expr) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scanPruned walks n, pruning nested function literals (their statements
// run on another goroutine's activation, not this function's paths).
func scanPruned(n ast.Node, f func(ast.Node) bool) {
	root := n
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok && m != root {
			return false
		}
		return f(m)
	})
}

// capturesResponseWriter finds an identifier in body whose type is named
// ResponseWriter (http or any package's equivalent).
func capturesResponseWriter(pass *analysis.Pass, body ast.Node) (string, bool) {
	return findTypedIdent(pass, body, func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "ResponseWriter"
	})
}

// capturesMutex finds an identifier in body whose type is sync.Mutex or
// sync.RWMutex (or a pointer to one).
func capturesMutex(pass *analysis.Pass, body ast.Node) (string, bool) {
	return findTypedIdent(pass, body, func(t types.Type) bool {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
	})
}

// findTypedIdent returns the lexically first identifier in body whose type
// matches pred.
func findTypedIdent(pass *analysis.Pass, body ast.Node, pred func(types.Type) bool) (string, bool) {
	name := ""
	var at token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || obj.Type() == nil || !pred(obj.Type()) {
			return true
		}
		if name == "" || id.Pos() < at {
			name, at = id.Name, id.Pos()
		}
		return true
	})
	return name, name != ""
}

// isTestFile reports whether file is a _test.go file.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go")
}
