package goroleak_test

import (
	"testing"

	"lcrb/internal/analysis/analysistest"
	"lcrb/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", "a", goroleak.Analyzer)
}
