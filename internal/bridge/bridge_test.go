package bridge

import (
	"reflect"
	"testing"

	"lcrb/internal/community"
	"lcrb/internal/gen"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

func mustGraph(t *testing.T, n int32, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twoCommunityFixture builds a small two-community graph:
//
//	community 0: 0 -> 1 -> 2, 0 -> 2
//	community 1: 4 -> 5
//	crossing:    2 -> 4 (from inside C0 to C1), 5 -> 3? no — node 3 is in C0 but unreachable.
func twoCommunityFixture(t *testing.T) (*graph.Graph, []int32) {
	t.Helper()
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, // inside community 0
		{U: 2, V: 4}, // bridge edge into community 1
		{U: 4, V: 5}, // inside community 1
	})
	assign := []int32{0, 0, 0, 0, 1, 1}
	return g, assign
}

func TestFindEndsBasic(t *testing.T) {
	g, assign := twoCommunityFixture(t)
	ends, err := FindEnds(g, assign, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	// Node 4 is the only node outside C0 reached through C0; node 5 is
	// behind the bridge end and must NOT be expanded into.
	if !reflect.DeepEqual(ends, []int32{4}) {
		t.Fatalf("ends = %v, want [4]", ends)
	}
}

func TestFindEndsDoesNotCrossThroughEnds(t *testing.T) {
	// C0: 0 -> 1; crossing 1 -> 2 (C1), 2 -> 3 (C1 -> C2). Node 3 is only
	// reachable through foreign community node 2, so it is not a bridge end.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	assign := []int32{0, 0, 1, 2}
	ends, err := FindEnds(g, assign, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ends, []int32{2}) {
		t.Fatalf("ends = %v, want [2]", ends)
	}
}

func TestFindEndsUnreachableOutsider(t *testing.T) {
	// An outside node with an in-edge from the community that the rumor
	// cannot reach is not a bridge end.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	assign := []int32{0, 0, 0, 1}
	// Rumor at 0 reaches only node 1; node 2's edge to 3 is irrelevant.
	ends, err := FindEnds(g, assign, 0, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) != 0 {
		t.Fatalf("ends = %v, want empty", ends)
	}
}

func TestFindEndsMultipleRumors(t *testing.T) {
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 4}, {U: 1, V: 5},
	})
	assign := []int32{0, 0, 0, 0, 1, 2}
	ends, err := FindEnds(g, assign, 0, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ends, []int32{4, 5}) {
		t.Fatalf("ends = %v, want [4 5]", ends)
	}
}

func TestFindEndsValidation(t *testing.T) {
	g, assign := twoCommunityFixture(t)
	if _, err := FindEnds(g, assign[:3], 0, []int32{0}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := FindEnds(g, assign, 0, nil); err == nil {
		t.Fatal("empty rumor set accepted")
	}
	if _, err := FindEnds(g, assign, 0, []int32{99}); err == nil {
		t.Fatal("out-of-range rumor accepted")
	}
	if _, err := FindEnds(g, assign, 0, []int32{4}); err == nil {
		t.Fatal("rumor outside its community accepted")
	}
}

func TestBuildBBSTDepthAndMembers(t *testing.T) {
	// Rumor 0; path 0 -> 1 -> 2 where 2 is the bridge end; plus a distant
	// helper 4 -> 3 -> 2 and a too-distant node 5 -> 4.
	// Backward BFS from 2 meets rumor 0 at depth 2, so Q_2 holds all
	// non-rumor nodes within distance 2 of node 2: {1, 2, 3, 4}.
	g := mustGraph(t, 6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2},
		{U: 4, V: 3}, {U: 3, V: 2},
		{U: 5, V: 4},
	})
	b, err := Build(g, []int32{0}, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Depths[0] != 2 {
		t.Fatalf("depth = %d, want 2", b.Depths[0])
	}
	if !reflect.DeepEqual(b.Trees[0], []int32{1, 2, 3, 4}) {
		t.Fatalf("Q_2 = %v, want [1 2 3 4]", b.Trees[0])
	}
}

func TestBuildBBSTExcludesNodesBehindRumors(t *testing.T) {
	// 3 -> 0(R) -> 1, end = 1. The rumor is met at depth 1, and node 3
	// sits behind it: the protector cascade cannot pass through node 0,
	// so Q_1 = {1} only... node 3 is at depth 2 > limit anyway, and more
	// importantly is only reachable through the rumor.
	g := mustGraph(t, 4, []graph.Edge{{U: 3, V: 0}, {U: 0, V: 1}})
	b, err := Build(g, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Depths[0] != 1 {
		t.Fatalf("depth = %d, want 1", b.Depths[0])
	}
	if !reflect.DeepEqual(b.Trees[0], []int32{1}) {
		t.Fatalf("Q_1 = %v, want [1]", b.Trees[0])
	}
}

func TestBuildBBSTNodesAtLimitIncludedButNotExpanded(t *testing.T) {
	// end = 3; rumor 0 at backward depth 1 (0 -> 3). Node 2 also at depth
	// 1 (2 -> 3) is included; node 1 (1 -> 2) at depth 2 is beyond the cap.
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 3}, {U: 2, V: 3}, {U: 1, V: 2}})
	b, err := Build(g, []int32{0}, []int32{3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Trees[0], []int32{2, 3}) {
		t.Fatalf("Q_3 = %v, want [2 3]", b.Trees[0])
	}
}

func TestBuildBBSTIncludesEndItself(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{U: 0, V: 1}})
	b, err := Build(g, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range b.Trees[0] {
		if u == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("the bridge end must appear in its own tree (N^0(v) = v)")
	}
}

func TestBuildValidation(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{U: 0, V: 1}})
	if _, err := Build(g, []int32{9}, []int32{1}); err == nil {
		t.Fatal("out-of-range rumor accepted")
	}
	if _, err := Build(g, []int32{0}, []int32{9}); err == nil {
		t.Fatal("out-of-range end accepted")
	}
	if _, err := Build(g, []int32{0}, []int32{0}); err == nil {
		t.Fatal("rumor seed as bridge end accepted")
	}
}

func TestInvert(t *testing.T) {
	b := &BBSTs{
		Ends:  []int32{10, 20},
		Trees: [][]int32{{5, 7, 10}, {7, 20}},
	}
	cov := b.Invert()
	if !reflect.DeepEqual(cov.Candidates, []int32{5, 7, 10, 20}) {
		t.Fatalf("Candidates = %v", cov.Candidates)
	}
	wantCovers := map[int32][]int32{5: {0}, 7: {0, 1}, 10: {0}, 20: {1}}
	for i, u := range cov.Candidates {
		if !reflect.DeepEqual(cov.Covers[i], wantCovers[u]) {
			t.Fatalf("Covers[%d] (node %d) = %v, want %v", i, u, cov.Covers[i], wantCovers[u])
		}
	}
	if !reflect.DeepEqual(cov.Ends, b.Ends) {
		t.Fatalf("Ends = %v", cov.Ends)
	}
}

func TestInvertEmpty(t *testing.T) {
	cov := (&BBSTs{}).Invert()
	if len(cov.Candidates) != 0 || len(cov.Covers) != 0 {
		t.Fatal("empty BBSTs inverted into non-empty coverage")
	}
}

// TestPipelineOnGeneratedNetwork exercises the full stage-1 pipeline on a
// generated community network with Louvain-detected communities.
func TestPipelineOnGeneratedNetwork(t *testing.T) {
	net, err := gen.Community(gen.CommunityConfig{Nodes: 600, AvgDegree: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	part := community.Louvain(net.Graph, community.LouvainOptions{Seed: 1})
	comm := part.ClosestBySize(60)
	members := part.Members(comm)
	src := rng.New(5)
	rumors := []int32{members[src.Intn(len(members))]}

	assign := part.Assign()
	ends, err := FindEnds(net.Graph, assign, comm, rumors)
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks: every end is outside the community, reachable,
	// and has an in-neighbour inside the community.
	for _, e := range ends {
		if assign[e] == comm {
			t.Fatalf("bridge end %d inside the rumor community", e)
		}
		hasInside := false
		for _, w := range net.Graph.In(e) {
			if assign[w] == comm {
				hasInside = true
				break
			}
		}
		if !hasInside {
			t.Fatalf("bridge end %d has no in-neighbour inside the rumor community", e)
		}
	}
	if len(ends) == 0 {
		t.Skip("no bridge ends for this draw; structural checks vacuous")
	}

	bb, err := Build(net.Graph, rumors, ends)
	if err != nil {
		t.Fatal(err)
	}
	for i, tree := range bb.Trees {
		if len(tree) == 0 {
			t.Fatalf("end %d has an empty BBST", bb.Ends[i])
		}
		// Every tree node must be able to reach the end within the depth.
		dist := graph.Distances(net.Graph, []int32{bb.Ends[i]}, graph.Backward)
		for _, u := range tree {
			if dist[u] == graph.Unreachable || (bb.Depths[i] >= 0 && dist[u] > bb.Depths[i]) {
				t.Fatalf("tree node %d cannot protect end %d within depth %d",
					u, bb.Ends[i], bb.Depths[i])
			}
		}
	}
	cov := bb.Invert()
	// Every end must be coverable (at least by itself).
	covered := make(map[int32]bool)
	for _, idxs := range cov.Covers {
		for _, i := range idxs {
			covered[i] = true
		}
	}
	for i := range bb.Ends {
		if !covered[int32(i)] {
			t.Fatalf("end index %d uncovered in inversion", i)
		}
	}
}
