// Package bridge implements the paper's first algorithmic stage: finding
// the bridge ends of a rumor community via Rumor Forward Search Trees
// (RFSTs), and building the Bridge-end Backward Search Trees (BBSTs) that
// the SCBG algorithm converts into a set-cover instance.
//
// A bridge end is a node outside the rumor community that is reachable from
// the rumor seeds along paths inside the community — the first individuals
// in neighbouring communities the rumor can touch, and the nodes the LCRB
// problem asks to protect.
package bridge

import (
	"fmt"
	"sort"

	"lcrb/internal/graph"
)

// FindEnds computes the bridge-end set B by BFS from the rumor seeds
// through the rumor community: expansion is confined to community members,
// and every node reached outside the community is recorded as a bridge end
// (an RFST leaf) without being expanded.
//
// assign maps every node to its community; rumorComm identifies the rumor
// community C_r; rumors is the seed set S_R, which must lie inside C_r.
// The returned slice is sorted.
func FindEnds(g *graph.Graph, assign []int32, rumorComm int32, rumors []int32) ([]int32, error) {
	if int32(len(assign)) != g.NumNodes() {
		return nil, fmt.Errorf("bridge: assignment covers %d nodes, graph has %d", len(assign), g.NumNodes())
	}
	if len(rumors) == 0 {
		return nil, fmt.Errorf("bridge: empty rumor seed set")
	}
	for _, r := range rumors {
		if r < 0 || r >= g.NumNodes() {
			return nil, fmt.Errorf("bridge: rumor seed %d out of range [0,%d)", r, g.NumNodes())
		}
		if assign[r] != rumorComm {
			return nil, fmt.Errorf("bridge: rumor seed %d is in community %d, not rumor community %d",
				r, assign[r], rumorComm)
		}
	}
	dist := graph.RestrictedDistances(g, rumors, graph.Forward, func(u graph.NodeID) bool {
		return assign[u] == rumorComm
	})
	var ends []int32
	for v, d := range dist {
		if d != graph.Unreachable && assign[v] != rumorComm {
			ends = append(ends, int32(v))
		}
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	return ends, nil
}

// BBSTs holds the Bridge-end Backward Search Trees of a problem instance.
type BBSTs struct {
	// Ends is the bridge-end set, in the order the trees are indexed.
	Ends []int32
	// Trees[i] is Q_{Ends[i]}: every node (rumor seeds excluded, the end
	// itself included as N^0) whose BFS distance *to* the end is at most
	// the end's rumor distance — the candidate protectors of that end.
	// Each tree is sorted.
	Trees [][]int32
	// Depths[i] is the search depth of tree i: the distance from the
	// nearest rumor seed to the end.
	Depths []int32
}

// Build constructs the BBST of every bridge end: a backward BFS from the
// end whose depth is fixed by the first rumor seed it meets (algorithm 3,
// step 4). Nodes on the rumor side of a seed are excluded because the
// protector cascade cannot pass through an already-infected node.
func Build(g *graph.Graph, rumors, ends []int32) (*BBSTs, error) {
	isRumor := make(map[int32]bool, len(rumors))
	for _, r := range rumors {
		if r < 0 || r >= g.NumNodes() {
			return nil, fmt.Errorf("bridge: rumor seed %d out of range [0,%d)", r, g.NumNodes())
		}
		isRumor[r] = true
	}
	out := &BBSTs{
		Ends:   append([]int32(nil), ends...),
		Trees:  make([][]int32, len(ends)),
		Depths: make([]int32, len(ends)),
	}
	for i, v := range ends {
		if v < 0 || v >= g.NumNodes() {
			return nil, fmt.Errorf("bridge: bridge end %d out of range [0,%d)", v, g.NumNodes())
		}
		if isRumor[v] {
			return nil, fmt.Errorf("bridge: bridge end %d is a rumor seed", v)
		}
		tree, depth := backwardTree(g, isRumor, v)
		out.Trees[i] = tree
		out.Depths[i] = depth
	}
	return out, nil
}

// backwardTree runs the depth-limited backward BFS from end v. The limit is
// discovered on the fly: the first rumor seed encountered at depth L caps
// the search at L. Returns the sorted candidate set and L (-1 if no rumor
// seed is backward-reachable, in which case every backward-reachable node
// is a candidate).
func backwardTree(g *graph.Graph, isRumor map[int32]bool, v int32) ([]int32, int32) {
	dist := make(map[int32]int32, 64)
	dist[v] = 0
	queue := []int32{v}
	limit := int32(-1)
	var tree []int32
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		d := dist[u]
		if limit >= 0 && d > limit {
			break // BFS order: everything past this is deeper than the cap
		}
		if isRumor[u] {
			if limit < 0 {
				limit = d
			}
			continue // rumor seeds cannot protect and block the search
		}
		tree = append(tree, u)
		if limit >= 0 && d == limit {
			continue // at the cap: record but do not expand
		}
		for _, w := range g.In(u) {
			if _, seen := dist[w]; !seen {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	sort.Slice(tree, func(i, j int) bool { return tree[i] < tree[j] })
	return tree, limit
}

// Coverage is the inversion of the BBSTs (algorithm 3, step 5): for each
// candidate protector u, the set SW_u of bridge ends it can protect.
type Coverage struct {
	// Candidates lists every node that appears in at least one tree,
	// sorted ascending.
	Candidates []int32
	// Covers[i] lists the *indices into Ends* of the bridge ends candidate
	// i protects, sorted ascending.
	Covers [][]int32
	// Ends mirrors BBSTs.Ends for convenience.
	Ends []int32
}

// Invert builds the Coverage from the trees.
func (b *BBSTs) Invert() *Coverage {
	byNode := make(map[int32][]int32)
	for i, tree := range b.Trees {
		for _, u := range tree {
			byNode[u] = append(byNode[u], int32(i))
		}
	}
	candidates := make([]int32, 0, len(byNode))
	for u := range byNode {
		candidates = append(candidates, u)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	covers := make([][]int32, len(candidates))
	for i, u := range candidates {
		covers[i] = byNode[u] // tree iteration order is ascending in i already
	}
	return &Coverage{Candidates: candidates, Covers: covers, Ends: append([]int32(nil), b.Ends...)}
}
