package shardsolve

import (
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"lcrb/internal/community"
	"lcrb/internal/core"
	"lcrb/internal/gen"
	"lcrb/internal/resilience"
	"lcrb/internal/sketch"
)

// testProblem builds a planted-community LCRB-P instance with bridge
// ends, mirroring the sketch package's fixture.
func testProblem(t testing.TB, nodes, commSize int32, seed uint64) *core.Problem {
	t.Helper()
	net, err := gen.Community(gen.CommunityConfig{Nodes: nodes, AvgDegree: 6, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	planted, err := community.FromAssignment(net.Communities)
	if err != nil {
		t.Fatal(err)
	}
	comm := planted.ClosestBySize(commSize)
	members := planted.Members(comm)
	if len(members) < 3 {
		t.Fatalf("community too small: %d members", len(members))
	}
	p, err := core.NewProblem(net.Graph, planted.Assign(), comm, members[:2])
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEnds() == 0 {
		t.Skip("no bridge ends for this draw")
	}
	return p
}

// buildHosts builds count shard hosts holding prebuilt slices, plus
// spares hosts whose providers rebuild any requested slice from the CRN
// seed stream.
func buildHosts(t testing.TB, p *core.Problem, opts sketch.Options, count, spares int) []*Host {
	t.Helper()
	hosts := make([]*Host, 0, count+spares)
	for i := 0; i < count; i++ {
		slice, err := sketch.BuildShard(p, opts, i, count)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, count, err)
		}
		hosts = append(hosts, NewHost(StaticProvider(slice)))
	}
	for i := 0; i < spares; i++ {
		hosts = append(hosts, NewHost(func(index, cnt int) (*sketch.Set, error) {
			return sketch.BuildShard(p, opts, index, cnt)
		}))
	}
	return hosts
}

// fastCoordinator returns a coordinator tuned for test latencies.
func fastCoordinator(tr Transport, shards int) *Coordinator {
	return &Coordinator{
		Transport:   tr,
		Shards:      shards,
		HedgeDelay:  2 * time.Millisecond,
		CallTimeout: 2 * time.Second,
	}
}

// assertSameGreedy fails unless the sharded result matches the
// single-store GreedyResult field for field, floats included — the gains
// are ratios of identical integers, so even float equality is exact.
func assertSameGreedy(t *testing.T, got *Result, want *core.GreedyResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Protectors, want.Protectors) {
		t.Fatalf("Protectors = %v, want %v", got.Protectors, want.Protectors)
	}
	if !reflect.DeepEqual(got.Gains, want.Gains) {
		t.Fatalf("Gains = %v, want %v", got.Gains, want.Gains)
	}
	if got.Evaluations != want.Evaluations {
		t.Fatalf("Evaluations = %d, want %d", got.Evaluations, want.Evaluations)
	}
	if got.ProtectedEnds != want.ProtectedEnds || got.BaselineEnds != want.BaselineEnds {
		t.Fatalf("σ̂ = (%v, %v), want (%v, %v)",
			got.ProtectedEnds, got.BaselineEnds, want.ProtectedEnds, want.BaselineEnds)
	}
	if got.Achieved != want.Achieved || got.Partial != want.Partial {
		t.Fatalf("flags = (achieved %v, partial %v), want (%v, %v)",
			got.Achieved, got.Partial, want.Achieved, want.Partial)
	}
}

// TestShardedBitIdentity is the headline acceptance check: with no
// faults, the sharded solve returns a GreedyResult identical to the
// single-store solver — Protectors, Gains, Evaluations, σ̂ — for shard
// counts 1, 2, 3 and GOMAXPROCS.
func TestShardedBitIdentity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	full, err := sketch.Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{0.7, 0.9} {
		want, err := sketch.SolveGreedyRIS(p, full, sketch.SolveOptions{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		counts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
		for _, count := range counts {
			hosts := buildHosts(t, p, opts, count, 0)
			c := fastCoordinator(NewInProc(hosts, nil), count)
			got, err := c.Solve(Spec{Alpha: alpha})
			if err != nil {
				t.Fatalf("alpha %v count %d: %v", alpha, count, err)
			}
			assertSameGreedy(t, got, want)
			if got.Degraded != "" || got.Shards.LostRealizations != 0 {
				t.Fatalf("alpha %v count %d: fault-free solve tagged %q with %d lost realizations",
					alpha, count, got.Degraded, got.Shards.LostRealizations)
			}
			if got.Shards.Total != count || got.Shards.Live != count {
				t.Fatalf("alpha %v count %d: census %+v", alpha, count, got.Shards)
			}
			if got.Samples != 48 || got.EffectiveSamples != 48 {
				t.Fatalf("alpha %v count %d: samples %d/%d, want 48/48",
					alpha, count, got.EffectiveSamples, got.Samples)
			}
		}
	}
}

// TestShardedFullSetAsSingleShard runs the coordinator over one host
// holding the unsharded sketch — the single-shard deployment reusing the
// daemon's existing store.
func TestShardedFullSetAsSingleShard(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 32, Seed: 7}
	full, err := sketch.Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sketch.SolveGreedyRIS(p, full, sketch.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := fastCoordinator(NewInProc([]*Host{NewHost(StaticProvider(full))}, nil), 1)
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGreedy(t, got, want)
}

// TestShardedRequeueOntoSpare kills a primary endpoint mid-solve with a
// spare available: the identity requeues, the spare rebuilds the slice
// from the CRN stream and reconciles from the request's commit prefix,
// and the answer is still bit-identical with no degradation.
func TestShardedRequeueOntoSpare(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	full, err := sketch.Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sketch.SolveGreedyRIS(p, full, sketch.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := buildHosts(t, p, opts, 3, 1)
	chaos := Chaos{1: {{Call: 3, Kind: FaultDie}}}
	c := fastCoordinator(NewInProc(hosts, chaos), 3)
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGreedy(t, got, want)
	if got.Degraded != "" || got.Shards.Live != 3 || got.Shards.LostRealizations != 0 {
		t.Fatalf("requeued solve tagged %q, census %+v", got.Degraded, got.Shards)
	}
}

// TestShardedRestartSurvives restarts a shard host mid-solve (sessions
// and cached slices dropped): the session-free protocol rebuilds from
// the committed prefix carried by every request, bit-identically.
func TestShardedRestartSurvives(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	full, err := sketch.Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sketch.SolveGreedyRIS(p, full, sketch.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Hosts must re-provide their slice after the restart drops the
	// cache, so give every primary a rebuilding provider.
	hosts := make([]*Host, 3)
	for i := range hosts {
		hosts[i] = NewHost(func(index, cnt int) (*sketch.Set, error) {
			return sketch.BuildShard(p, opts, index, cnt)
		})
	}
	chaos := Chaos{0: {{Call: 4, Kind: FaultRestart}}, 2: {{Call: 7, Kind: FaultRestart}}}
	c := fastCoordinator(NewInProc(hosts, chaos), 3)
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGreedy(t, got, want)
	if got.Degraded != "" {
		t.Fatalf("restarted solve tagged %q", got.Degraded)
	}
}

// TestShardedStragglerHedged stalls single calls on two endpoints: the
// hedge attempt wins past each stall, the shared stats record the wins,
// and the answer is bit-identical.
func TestShardedStragglerHedged(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	full, err := sketch.Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sketch.SolveGreedyRIS(p, full, sketch.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := buildHosts(t, p, opts, 3, 0)
	chaos := Chaos{1: {{Call: 2, Kind: FaultStall}}, 2: {{Call: 5, Kind: FaultStall}}}
	stats := &resilience.HedgeStats{}
	c := fastCoordinator(NewInProc(hosts, chaos), 3)
	c.HedgeStats = stats
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGreedy(t, got, want)
	if got.Degraded != "" {
		t.Fatalf("hedged solve tagged %q", got.Degraded)
	}
	if outcomes := stats.Snapshot(); outcomes.HedgeWon < 2 {
		t.Fatalf("hedge outcomes %+v, want at least 2 hedge wins", outcomes)
	}
}

// referenceGreedy is an independent oracle: plain (non-lazy) greedy max
// coverage over an explicit pair list, with (gain desc, node asc)
// tie-breaking — the selection the coordinator must reproduce over the
// surviving shards after a loss.
func referenceGreedy(pairs []sketch.Pair, baseline, samples, numEnds int, alpha float64) (protectors []int32, gains []int, covered int, target int) {
	required := int(alpha * float64(numEnds))
	if float64(required) < alpha*float64(numEnds) {
		required++
	}
	target = required*samples - baseline
	coveredBy := make(map[int32][]int, 0)
	for pi, pair := range pairs {
		for _, u := range pair.Nodes {
			coveredBy[u] = append(coveredBy[u], pi)
		}
	}
	nodes := make([]int32, 0, len(coveredBy))
	for u := range coveredBy {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
	done := make([]bool, len(pairs))
	for covered < target && len(protectors) < numEnds {
		best, bestGain := int32(-1), 0
		for _, u := range nodes {
			g := 0
			for _, pi := range coveredBy[u] {
				if !done[pi] {
					g++
				}
			}
			if g > bestGain {
				best, bestGain = u, g
			}
		}
		if best < 0 {
			break
		}
		for _, pi := range coveredBy[best] {
			done[pi] = true
		}
		covered += bestGain
		protectors = append(protectors, best)
		gains = append(gains, bestGain)
	}
	return protectors, gains, covered, target
}

// TestShardLossDegradesHonestly kills one of three shards (no spares)
// before the first commit: the solve must answer from the survivors,
// match the two-surviving-shards oracle exactly, and tag the loss.
func TestShardLossDegradesHonestly(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	slice0, err := sketch.BuildShard(p, opts, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	slice2, err := sketch.BuildShard(p, opts, 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	hosts := buildHosts(t, p, opts, 3, 0)
	// Call 1 is init (succeeds); the endpoint dies at its second call,
	// before any commit exists, so the selection from round 0 onward is
	// pure greedy over the survivors.
	chaos := Chaos{1: {{Call: 2, Kind: FaultDie}}}
	c := fastCoordinator(NewInProc(hosts, chaos), 3)
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}

	lostWant := sketch.ShardRealizations(48, 1, 3)
	if got.Degraded != DegradedShardLoss {
		t.Fatalf("Degraded = %q, want %q", got.Degraded, DegradedShardLoss)
	}
	if got.Shards.Total != 3 || got.Shards.Live != 2 || got.Shards.LostRealizations != lostWant {
		t.Fatalf("census %+v, want {3, 2, %d}", got.Shards, lostWant)
	}
	if got.EffectiveSamples != 48-lostWant {
		t.Fatalf("EffectiveSamples = %d, want %d", got.EffectiveSamples, 48-lostWant)
	}

	// Oracle: plain greedy over exactly the surviving shards' pairs.
	pairs := append(append([]sketch.Pair{}, slice0.Pairs...), slice2.Pairs...)
	baseline := slice0.BaselinePairs + slice2.BaselinePairs
	nEff := 48 - lostWant
	protectors, gainInts, covered, target := referenceGreedy(pairs, baseline, nEff, slice0.NumEnds, 0.9)
	if !reflect.DeepEqual(got.Protectors, append([]int32{}, protectors...)) {
		t.Fatalf("Protectors = %v, oracle %v", got.Protectors, protectors)
	}
	n := float64(nEff)
	for k, g := range gainInts {
		if got.Gains[k] != float64(g)/n {
			t.Fatalf("Gains[%d] = %v, oracle %v", k, got.Gains[k], float64(g)/n)
		}
	}
	if got.ProtectedEnds != float64(baseline+covered)/n {
		t.Fatalf("ProtectedEnds = %v, oracle %v", got.ProtectedEnds, float64(baseline+covered)/n)
	}
	if got.BaselineEnds != float64(baseline)/n {
		t.Fatalf("BaselineEnds = %v, oracle %v", got.BaselineEnds, float64(baseline)/n)
	}
	if want := covered >= target; got.Achieved != want {
		t.Fatalf("Achieved = %v, oracle %v", got.Achieved, want)
	}
}

// TestShardLossBreaksCertificate picks an ε whose martingale certificate
// holds for the fault-free solve but not for the post-loss one, and
// checks BoundMet flips accordingly: shard loss must be able to revoke
// an accuracy certificate the full sample count would have earned.
func TestShardLossBreaksCertificate(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	numEnds := hostNumEnds(t, buildHosts(t, p, opts, 3, 0)[0])
	chaos := func() Chaos { return Chaos{1: {{Call: 2, Kind: FaultDie}}} }

	// Dry runs (no certificate requested) to learn both x̂ values.
	clean, err := fastCoordinator(NewInProc(buildHosts(t, p, opts, 3, 0), nil), 3).Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := fastCoordinator(NewInProc(buildHosts(t, p, opts, 3, 0), chaos()), 3).Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Degraded != DegradedShardLoss {
		t.Fatalf("Degraded = %q, want %q", lossy.Degraded, DegradedShardLoss)
	}
	xhatClean := clean.ProtectedEnds / float64(numEnds)
	xhatLossy := lossy.ProtectedEnds / float64(numEnds)

	// Search for an ε the clean run certifies and the lossy one cannot.
	eps := 0.0
	for cand := 0.05; cand < 0.95; cand += 0.01 {
		metClean, err := sketch.CertifyBound(cand, sketch.DefaultDelta, clean.EffectiveSamples, xhatClean)
		if err != nil {
			t.Fatal(err)
		}
		metLossy, err := sketch.CertifyBound(cand, sketch.DefaultDelta, lossy.EffectiveSamples, xhatLossy)
		if err != nil {
			t.Fatal(err)
		}
		if metClean && !metLossy {
			eps = cand
			break
		}
	}
	if eps == 0 {
		t.Skip("no epsilon separates the full run from the post-loss run at this coverage")
	}

	cleanCert, err := fastCoordinator(NewInProc(buildHosts(t, p, opts, 3, 0), nil), 3).
		Solve(Spec{CertEpsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if !cleanCert.BoundChecked || !cleanCert.BoundMet {
		t.Fatalf("fault-free certificate: checked %v met %v, want true/true",
			cleanCert.BoundChecked, cleanCert.BoundMet)
	}

	lossyCert, err := fastCoordinator(NewInProc(buildHosts(t, p, opts, 3, 0), chaos()), 3).
		Solve(Spec{CertEpsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if lossyCert.Degraded != DegradedShardLoss {
		t.Fatalf("Degraded = %q", lossyCert.Degraded)
	}
	if !lossyCert.BoundChecked || lossyCert.BoundMet {
		t.Fatalf("post-loss certificate: checked %v met %v, want true/false — the loss broke the bound",
			lossyCert.BoundChecked, lossyCert.BoundMet)
	}
}

// hostNumEnds reads |B| from a host's init response.
func hostNumEnds(t *testing.T, h *Host) int {
	t.Helper()
	resp, err := h.Serve(&Request{Op: OpInit, SolveID: "probe", Shard: 0, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	return resp.NumEnds
}

// TestShardedValidation covers the coordinator's input checks.
func TestShardedValidation(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 16, Seed: 7}
	hosts := buildHosts(t, p, opts, 2, 0)
	tr := NewInProc(hosts, nil)
	if _, err := (&Coordinator{Transport: nil, Shards: 2}).Solve(Spec{}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := (&Coordinator{Transport: tr, Shards: 0}).Solve(Spec{}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := (&Coordinator{Transport: tr, Shards: 3}).Solve(Spec{}); err == nil {
		t.Fatal("more shards than endpoints accepted")
	}
	if _, err := (&Coordinator{Transport: tr, Shards: 2}).Solve(Spec{Alpha: 1.5}); err == nil {
		t.Fatal("alpha out of range accepted")
	}
	if _, err := (&Coordinator{Transport: tr, Shards: 2}).Solve(Spec{CertEpsilon: 2}); err == nil {
		t.Fatal("certificate epsilon out of range accepted")
	}
}
