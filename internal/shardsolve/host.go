package shardsolve

import (
	"fmt"
	"sync"

	"lcrb/internal/sketch"
)

// SliceProvider supplies the shard slice for coordinates (index, count) —
// by returning a prebuilt set, loading a persisted one, or rebuilding
// from the CRN seed stream (sketch.BuildShard). A host calls it once per
// coordinates and caches the result; a spare endpoint's provider is what
// lets it adopt a dead shard's identity mid-solve.
type SliceProvider func(index, count int) (*sketch.Set, error)

// StaticProvider serves exactly the given prebuilt sets, matched by their
// recorded shard coordinates. A full (unsharded) set is served as shard
// 0 of 1 — a single-shard deployment can reuse the daemon's existing
// sketch store unchanged.
func StaticProvider(sets ...*sketch.Set) SliceProvider {
	return func(index, count int) (*sketch.Set, error) {
		for _, s := range sets {
			if s == nil {
				continue
			}
			if s.ShardCount == count && s.ShardIndex == index {
				return s, nil
			}
			if s.ShardCount == 0 && count == 1 && index == 0 {
				return s, nil
			}
		}
		return nil, fmt.Errorf("shardsolve: no slice for shard %d/%d", index, count)
	}
}

// Host is one shard worker: it owns slices (lazily obtained from its
// provider) and per-solve sessions over them, and answers coordinator
// requests. Safe for concurrent use; requests against the same slice
// serialize, which is harmless because a solve's requests are sequential
// apart from hedged duplicates.
type Host struct {
	provider SliceProvider

	mu     sync.Mutex
	slices map[hostKey]*hostSlice
}

// hostKey addresses a slice by its shard coordinates.
type hostKey struct{ index, count int }

// hostSlice is one cached slice plus its solve sessions.
type hostSlice struct {
	mu       sync.Mutex
	set      *sketch.Set
	sessions map[string]*session
}

// session is a host's view of one solve: the commit prefix applied so
// far, the gain each commit scored locally (the idempotency log duplicate
// commits are answered from), and the covered bitset they produced.
type session struct {
	committed []int32
	gains     []int
	covered   sketch.Bitset
}

// NewHost returns a Host serving slices from provider.
func NewHost(provider SliceProvider) *Host {
	return &Host{provider: provider, slices: make(map[hostKey]*hostSlice)}
}

// Restart simulates (or implements) a process restart: every cached
// slice and every session is dropped. Subsequent requests re-provide the
// slice and rebuild sessions from their committed prefixes — the
// session-free protocol's recovery path.
func (h *Host) Restart() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.slices = make(map[hostKey]*hostSlice)
}

// Serve answers one coordinator request.
func (h *Host) Serve(req *Request) (*Response, error) {
	if req == nil {
		return nil, fmt.Errorf("shardsolve: host: nil request")
	}
	if req.Count < 1 || req.Shard < 0 || req.Shard >= req.Count {
		return nil, fmt.Errorf("shardsolve: host: shard %d/%d out of range", req.Shard, req.Count)
	}
	sl, err := h.slice(req.Shard, req.Count)
	if err != nil {
		return nil, err
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	switch req.Op {
	case OpInit:
		return sl.init(req)
	case OpGains:
		return sl.gainsOf(req)
	case OpCommit:
		return sl.commit(req)
	case OpForget:
		delete(sl.sessions, req.SolveID)
		return &Response{Shard: req.Shard}, nil
	default:
		return nil, fmt.Errorf("shardsolve: host: unknown op %q", req.Op)
	}
}

// slice returns the cached slice for the coordinates, consulting the
// provider on a miss.
func (h *Host) slice(index, count int) (*hostSlice, error) {
	key := hostKey{index, count}
	h.mu.Lock()
	defer h.mu.Unlock()
	if sl, ok := h.slices[key]; ok {
		return sl, nil
	}
	if h.provider == nil {
		return nil, fmt.Errorf("shardsolve: host: no slice provider for shard %d/%d", index, count)
	}
	set, err := h.provider(index, count)
	if err != nil {
		return nil, fmt.Errorf("shardsolve: host: provide shard %d/%d: %w", index, count, err)
	}
	if set == nil {
		return nil, fmt.Errorf("shardsolve: host: provider returned nil slice for shard %d/%d", index, count)
	}
	if !(set.ShardCount == count && set.ShardIndex == index) &&
		!(set.ShardCount == 0 && count == 1 && index == 0) {
		return nil, fmt.Errorf("shardsolve: host: provider returned slice %d/%d for shard %d/%d",
			set.ShardIndex, set.ShardCount, index, count)
	}
	sl := &hostSlice{set: set, sessions: make(map[string]*session)}
	h.slices[key] = sl
	return sl, nil
}

// sliceSamples is the number of realizations a set holds: ShardSamples
// for a slice, Samples for a full set serving as the single shard.
func sliceSamples(set *sketch.Set) int {
	if set.ShardCount > 0 {
		return set.ShardSamples
	}
	return set.Samples
}

// init answers OpInit: slice metadata plus every candidate's round-0
// pair count, ascending by node (Candidates is sorted).
func (sl *hostSlice) init(req *Request) (*Response, error) {
	resp := &Response{
		Shard:         req.Shard,
		Samples:       sl.set.Samples,
		NumEnds:       sl.set.NumEnds,
		ShardSamples:  sliceSamples(sl.set),
		BaselinePairs: sl.set.BaselinePairs,
	}
	for _, u := range sl.set.Candidates() {
		resp.Counts = append(resp.Counts, NodeCount{Node: u, Pairs: sl.set.PairCount(u)})
	}
	return resp, nil
}

// gainsOf answers OpGains: reconcile to the request's prefix, then count
// each candidate's marginal gain against the covered bitset.
func (sl *hostSlice) gainsOf(req *Request) (*Response, error) {
	sess := sl.session(req.SolveID)
	sl.syncTo(sess, req.Committed)
	resp := &Response{Shard: req.Shard, Gains: make([]int, len(req.Candidates))}
	for i, u := range req.Candidates {
		resp.Gains[i] = sl.set.MarginalGain(u, sess.covered)
	}
	return resp, nil
}

// commit answers OpCommit. A duplicate of an already-applied commit —
// a hedged or retried delivery — is answered from the gain log without
// touching the covered state, so commits are idempotent.
func (sl *hostSlice) commit(req *Request) (*Response, error) {
	sess := sl.session(req.SolveID)
	at := len(req.Committed)
	if len(sess.committed) > at &&
		prefixEq(sess.committed[:at], req.Committed) &&
		sess.committed[at] == req.Node {
		return &Response{Shard: req.Shard, Gain: sess.gains[at]}, nil
	}
	sl.syncTo(sess, req.Committed)
	g := sl.apply(sess, req.Node)
	return &Response{Shard: req.Shard, Gain: g}, nil
}

// session returns the session for id, creating it cold.
func (sl *hostSlice) session(id string) *session {
	sess, ok := sl.sessions[id]
	if !ok {
		sess = &session{covered: sketch.NewBitset(sl.set.NumPairs())}
		sl.sessions[id] = sess
	}
	return sess
}

// syncTo reconciles sess to exactly the given commit prefix: the missing
// suffix is applied when the prefix extends the session, anything else —
// a session ahead of the request, or diverged from it — is rebuilt from
// scratch, which is cheap (one commit sweep per prefix entry) and always
// correct.
func (sl *hostSlice) syncTo(sess *session, committed []int32) {
	if len(committed) >= len(sess.committed) && prefixEq(committed[:len(sess.committed)], sess.committed) {
		for _, u := range committed[len(sess.committed):] {
			sl.apply(sess, u)
		}
		return
	}
	sess.committed = sess.committed[:0]
	sess.gains = sess.gains[:0]
	sess.covered = sketch.NewBitset(sl.set.NumPairs())
	for _, u := range committed {
		sl.apply(sess, u)
	}
}

// apply commits u into the session, logging its local gain.
func (sl *hostSlice) apply(sess *session, u int32) int {
	g := sl.set.CommitNode(u, sess.covered)
	sess.committed = append(sess.committed, u)
	sess.gains = append(sess.gains, g)
	return g
}

// prefixEq reports whether two int32 slices are element-wise equal.
func prefixEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
