package shardsolve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ShardPath is the path shard requests POST to on a shard worker's HTTP
// server (lcrbd -shard-of serves it).
const ShardPath = "/v1/shard"

// NewHTTPTransport returns a Transport that delivers requests as JSON
// POSTs to urls[i] + ShardPath. A nil client means http.DefaultClient;
// pass one with a Timeout only if it exceeds the coordinator's
// CallTimeout, or the client will cut hedged attempts short.
func NewHTTPTransport(urls []string, client *http.Client) Transport {
	if client == nil {
		client = http.DefaultClient
	}
	return &httpTransport{urls: urls, client: client}
}

// httpTransport is the HTTP implementation of Transport.
type httpTransport struct {
	urls   []string
	client *http.Client
}

// Endpoints implements Transport.
func (t *httpTransport) Endpoints() int { return len(t.urls) }

// Call implements Transport. Connection failures and 5xx statuses wrap
// ErrEndpointDown — the shard process is gone or failing, the coordinator
// should requeue — while 4xx statuses surface as plain errors: the
// request itself is wrong and no spare will fare better.
func (t *httpTransport) Call(ctx context.Context, ep int, req *Request) (*Response, error) {
	if ep < 0 || ep >= len(t.urls) {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d out of range [0,%d)", ep, len(t.urls))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("shardsolve: http: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.urls[ep]+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d: %w", ep, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := t.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d: %w: %w", ep, ErrEndpointDown, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<24))
	if err != nil {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d: read response: %w", ep, err)
	}
	if hresp.StatusCode >= 500 {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d: status %d: %s: %w",
			ep, hresp.StatusCode, bytes.TrimSpace(data), ErrEndpointDown)
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d: status %d: %s",
			ep, hresp.StatusCode, bytes.TrimSpace(data))
	}
	var resp Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("shardsolve: http: endpoint %d: decode response: %w", ep, err)
	}
	return &resp, nil
}

// NewHTTPHandler returns the HTTP server side of the shard protocol:
// POST ShardPath with a JSON Request, get a JSON Response. Malformed
// requests get 400; host failures (a provider that cannot produce the
// slice, an out-of-range shard) get 500, which the HTTP transport maps
// to ErrEndpointDown so the coordinator requeues.
func NewHTTPHandler(host *Host) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ShardPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "shard requests must POST", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<24)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("decode request: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := host.Serve(&req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The header is gone; nothing to do but note it for the logs.
			http.Error(w, fmt.Sprintf("encode response: %v", err), http.StatusInternalServerError)
		}
	})
	return mux
}
