package shardsolve

import (
	"context"
	"errors"
)

// Transport ops. One request type with an op discriminant keeps the wire
// format a single JSON shape for the HTTP transport.
const (
	// OpInit asks a shard for its slice metadata and round-0 candidate
	// counts.
	OpInit = "init"
	// OpGains asks a shard for the marginal gains of candidate nodes
	// against its covered state at the request's committed prefix.
	OpGains = "gains"
	// OpCommit asks a shard to commit one node on top of the request's
	// committed prefix and report the slice-local gain.
	OpCommit = "commit"
	// OpForget drops the shard's session for the solve id — end-of-solve
	// hygiene, best-effort.
	OpForget = "forget"
)

// ErrEndpointDown reports a transport endpoint that is not serving —
// killed by a chaos schedule, or unreachable over HTTP. Test with
// errors.Is.
var ErrEndpointDown = errors.New("shardsolve: endpoint down")

// ErrCallTimeout reports a shard call that outlived the coordinator's
// per-call budget while the solve itself was still live — a straggler
// both hedge attempts failed to beat. Test with errors.Is.
var ErrCallTimeout = errors.New("shardsolve: call timed out")

// Request is one coordinator → shard message. Committed always carries
// the full commit prefix of the solve so far, which is what makes the
// protocol session-free: any host, fresh spare or restarted process
// included, can reconcile to the coordinator's state from the request
// alone.
type Request struct {
	// Op is one of OpInit, OpGains, OpCommit, OpForget.
	Op string `json:"op"`
	// SolveID names the solve session on the host.
	SolveID string `json:"solveId"`
	// Shard and Count are the shard coordinates this endpoint must
	// serve: the slice of realizations ≡ Shard (mod Count).
	Shard int `json:"shard"`
	Count int `json:"count"`
	// Committed is the full commit prefix, in commit order.
	Committed []int32 `json:"committed,omitempty"`
	// Candidates lists the nodes to evaluate (OpGains).
	Candidates []int32 `json:"candidates,omitempty"`
	// Node is the node to commit (OpCommit).
	Node int32 `json:"node"`
}

// NodeCount is one candidate's round-0 pair count on a shard.
type NodeCount struct {
	Node  int32 `json:"node"`
	Pairs int   `json:"pairs"`
}

// Response is one shard → coordinator message; which fields are set
// depends on the request op.
type Response struct {
	// Shard echoes the shard index served.
	Shard int `json:"shard"`

	// OpInit: the slice's global sample count, bridge-end count,
	// slice-held realization count, slice-local baseline pairs, and
	// every candidate's pair count, ascending by node.
	Samples       int         `json:"samples,omitempty"`
	NumEnds       int         `json:"numEnds,omitempty"`
	ShardSamples  int         `json:"shardSamples,omitempty"`
	BaselinePairs int         `json:"baselinePairs,omitempty"`
	Counts        []NodeCount `json:"counts,omitempty"`

	// OpGains: marginal gains parallel to Request.Candidates.
	Gains []int `json:"gains,omitempty"`

	// OpCommit: the slice-local gain of the committed node.
	Gain int `json:"gain"`
}

// Transport carries coordinator requests to shard endpoints. Endpoints
// 0..shards−1 serve the shard identities; any extras are spares the
// coordinator requeues dead identities onto. Implementations must be safe
// for concurrent Call use — the coordinator scatters to all endpoints at
// once and hedges duplicates.
type Transport interface {
	// Endpoints reports how many endpoints the transport reaches.
	Endpoints() int
	// Call delivers req to endpoint ep and returns its response.
	Call(ctx context.Context, ep int, req *Request) (*Response, error)
}
