package shardsolve

import (
	"context"
	"fmt"
	"sync"
)

// FaultKind enumerates the scripted endpoint faults of a chaos schedule.
type FaultKind int

const (
	// FaultFail makes one call return an injected error.
	FaultFail FaultKind = iota
	// FaultStall makes one call block until its context ends — a
	// straggler only a hedge or a per-call timeout gets past.
	FaultStall
	// FaultRestart restarts the endpoint's host before serving the call:
	// cached slices and sessions are dropped, the call itself proceeds
	// against the cold host.
	FaultRestart
	// FaultDie kills the endpoint: this call and every later one fail
	// with ErrEndpointDown.
	FaultDie
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultFail:
		return "fail"
	case FaultStall:
		return "stall"
	case FaultRestart:
		return "restart"
	case FaultDie:
		return "die"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scripted event: the endpoint's Call-th call (1-based)
// suffers Kind.
type Fault struct {
	Call int
	Kind FaultKind
}

// Chaos maps endpoint index → scripted faults. The schedule is keyed by
// per-endpoint call counts, so a given schedule replays deterministically
// for a deterministic caller — the chaos tests script exact kill and
// stall points instead of flipping coins.
type Chaos map[int][]Fault

// NewInProc returns an in-process Transport over the given hosts, with
// chaos (nil for none) injected per the schedule. Endpoint i serves
// through hosts[i]; hosts beyond the coordinator's shard count act as
// spares.
func NewInProc(hosts []*Host, chaos Chaos) Transport {
	return &inproc{hosts: hosts, chaos: chaos, calls: make([]int, len(hosts)), dead: make([]bool, len(hosts))}
}

// inproc delivers requests by direct method call, with scripted faults.
type inproc struct {
	hosts []*Host
	chaos Chaos

	mu    sync.Mutex
	calls []int
	dead  []bool
}

// Endpoints implements Transport.
func (t *inproc) Endpoints() int { return len(t.hosts) }

// Call implements Transport: count the call, consult the schedule, then
// serve through the endpoint's host.
func (t *inproc) Call(ctx context.Context, ep int, req *Request) (*Response, error) {
	if ep < 0 || ep >= len(t.hosts) {
		return nil, fmt.Errorf("shardsolve: inproc: endpoint %d out of range [0,%d)", ep, len(t.hosts))
	}
	t.mu.Lock()
	t.calls[ep]++
	n := t.calls[ep]
	var fault *Fault
	for i := range t.chaos[ep] {
		if t.chaos[ep][i].Call == n {
			fault = &t.chaos[ep][i]
			break
		}
	}
	if fault != nil && fault.Kind == FaultDie {
		t.dead[ep] = true
	}
	dead := t.dead[ep]
	t.mu.Unlock()

	if dead {
		return nil, fmt.Errorf("shardsolve: inproc: endpoint %d: %w", ep, ErrEndpointDown)
	}
	if fault != nil {
		switch fault.Kind {
		case FaultFail:
			return nil, fmt.Errorf("shardsolve: inproc: endpoint %d: injected failure at call %d", ep, n)
		case FaultStall:
			<-ctx.Done()
			return nil, fmt.Errorf("shardsolve: inproc: endpoint %d: stalled call %d: %w", ep, n, ctx.Err())
		case FaultRestart:
			t.hosts[ep].Restart()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shardsolve: inproc: endpoint %d: %w", ep, err)
	}
	return t.hosts[ep].Serve(req)
}
