package shardsolve

import (
	"context"
	"sync"
	"testing"
	"time"

	"lcrb/internal/sketch"
)

// TestChaosStormTerminates is the chaos gate: concurrent solves against
// a shared transport under a deterministic mix of kills, stalls,
// restarts, and transient failures. Every opened solve must terminate —
// no hangs — and every answer must be internally consistent: degraded
// iff realizations were lost, effective samples matching the census,
// protector and gain lists the same length. Run under -race by make ci.
func TestChaosStormTerminates(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}

	schedules := []Chaos{
		nil,
		{1: {{Call: 2, Kind: FaultDie}}},
		{0: {{Call: 3, Kind: FaultStall}}, 2: {{Call: 5, Kind: FaultStall}}},
		{1: {{Call: 2, Kind: FaultRestart}}, 3: {{Call: 1, Kind: FaultDie}}},
		{0: {{Call: 1, Kind: FaultFail}, {Call: 4, Kind: FaultFail}}, 2: {{Call: 2, Kind: FaultDie}}},
		{0: {{Call: 2, Kind: FaultDie}}, 1: {{Call: 2, Kind: FaultDie}}, 2: {{Call: 3, Kind: FaultStall}}},
		{3: {{Call: 1, Kind: FaultStall}}, 4: {{Call: 1, Kind: FaultDie}}, 1: {{Call: 6, Kind: FaultRestart}}},
	}

	const shards = 4
	var wg sync.WaitGroup
	results := make([]*Result, len(schedules))
	errs := make([]error, len(schedules))
	for i := range schedules {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each storm gets its own hosts and transport (a schedule is
			// keyed by per-endpoint call counts, so transports cannot be
			// shared), with two spares behind rebuilding providers.
			hosts := buildHosts(t, p, opts, shards, 2)
			c := &Coordinator{
				Transport:   NewInProc(hosts, schedules[i]),
				Shards:      shards,
				HedgeDelay:  3 * time.Millisecond,
				CallTimeout: 250 * time.Millisecond,
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			results[i], errs[i] = c.SolveContext(ctx, Spec{})
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("chaos storm hung: a solve failed to terminate")
	}

	for i := range schedules {
		res, err := results[i], errs[i]
		if err != nil {
			// Termination with a real error (e.g. every replica of a shard
			// lost) is an acceptable outcome; a hang or a lying result is
			// not.
			t.Logf("schedule %d: solve failed cleanly: %v", i, err)
			continue
		}
		if res == nil {
			t.Errorf("schedule %d: nil result without error", i)
			continue
		}
		if (res.Degraded == DegradedShardLoss) != (res.Shards.LostRealizations > 0) {
			t.Errorf("schedule %d: Degraded=%q but LostRealizations=%d",
				i, res.Degraded, res.Shards.LostRealizations)
		}
		if res.EffectiveSamples != res.Samples-res.Shards.LostRealizations {
			t.Errorf("schedule %d: EffectiveSamples=%d, Samples=%d, lost=%d",
				i, res.EffectiveSamples, res.Samples, res.Shards.LostRealizations)
		}
		if res.Shards.Total != shards || res.Shards.Live < 1 || res.Shards.Live > shards {
			t.Errorf("schedule %d: census %+v", i, res.Shards)
		}
		if len(res.Protectors) != len(res.Gains) {
			t.Errorf("schedule %d: %d protectors, %d gains",
				i, len(res.Protectors), len(res.Gains))
		}
		for k, g := range res.Gains {
			if g <= 0 {
				t.Errorf("schedule %d: non-positive committed gain %v at %d", i, g, k)
			}
		}
	}
}

// TestChaosSolveContextCancel cancels a solve stuck on an endpoint that
// stalls forever with no timeout to cut it loose: the solve must return
// promptly with the context error, not hang.
func TestChaosSolveContextCancel(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 16, Seed: 7}
	hosts := buildHosts(t, p, opts, 2, 0)
	// Both the primary and its hedge stall: only the solve context can
	// end the call.
	chaos := Chaos{1: {{Call: 1, Kind: FaultStall}, {Call: 2, Kind: FaultStall}, {Call: 3, Kind: FaultStall}, {Call: 4, Kind: FaultStall}, {Call: 5, Kind: FaultStall}, {Call: 6, Kind: FaultStall}}}
	c := &Coordinator{
		Transport:   NewInProc(hosts, chaos),
		Shards:      2,
		HedgeDelay:  time.Millisecond,
		CallTimeout: -1, // unbounded: nothing but ctx ends a stalled call
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SolveContext(ctx, Spec{})
	if err == nil {
		t.Fatal("canceled solve returned a result")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v", elapsed)
	}
}
