package shardsolve

import (
	"errors"
	"reflect"
	"testing"

	"lcrb/internal/sketch"
)

// hostFixture builds one host over shard 0 of 2 plus the slice itself
// for direct inspection.
func hostFixture(t *testing.T) (*Host, *sketch.Set) {
	t.Helper()
	p := testProblem(t, 300, 40, 41)
	slice, err := sketch.BuildShard(p, sketch.Options{Samples: 32, Seed: 7}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewHost(StaticProvider(slice)), slice
}

// gains asks the host for one candidate's marginal gain under a prefix.
func gains(t *testing.T, h *Host, id string, committed []int32, u int32) int {
	t.Helper()
	resp, err := h.Serve(&Request{
		Op: OpGains, SolveID: id, Shard: 0, Count: 2,
		Committed: committed, Candidates: []int32{u},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Gains[0]
}

// commit sends one commit and returns the reported gain.
func commit(t *testing.T, h *Host, id string, committed []int32, u int32) int {
	t.Helper()
	resp, err := h.Serve(&Request{
		Op: OpCommit, SolveID: id, Shard: 0, Count: 2,
		Committed: committed, Node: u,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Gain
}

// pickNodes returns the two highest-round-0-count candidates of a slice.
func pickNodes(t *testing.T, slice *sketch.Set) (a, b int32) {
	t.Helper()
	cands := slice.Candidates()
	if len(cands) < 2 {
		t.Skip("slice too sparse for session tests")
	}
	bestA, bestB := -1, -1
	for _, u := range cands {
		c := slice.PairCount(u)
		if bestA < 0 || c > slice.PairCount(a) {
			a, bestA, b, bestB = u, c, a, bestA
		} else if bestB < 0 || c > slice.PairCount(b) {
			b, bestB = u, c
		}
	}
	return a, b
}

// TestHostCommitIdempotent replays a commit (a hedged duplicate): the
// second delivery must answer from the gain log without double-counting.
func TestHostCommitIdempotent(t *testing.T) {
	h, slice := hostFixture(t)
	a, b := pickNodes(t, slice)

	g1 := commit(t, h, "s", nil, a)
	if again := commit(t, h, "s", nil, a); again != g1 {
		t.Fatalf("replayed commit gain %d, first delivery %d", again, g1)
	}
	// State must still be exactly one commit deep: b's gain under prefix
	// {a} matches a fresh session's.
	want := gains(t, h, "fresh", []int32{a}, b)
	if got := gains(t, h, "s", []int32{a}, b); got != want {
		t.Fatalf("gain after replay %d, want %d", got, want)
	}
}

// TestHostRebuildsOnDivergence hands the host a prefix that contradicts
// its session: it must rebuild from the request's prefix, not trust its
// own state.
func TestHostRebuildsOnDivergence(t *testing.T) {
	h, slice := hostFixture(t)
	a, b := pickNodes(t, slice)

	commit(t, h, "s", nil, a)
	// The coordinator's story is now "b was first" — divergent.
	got := gains(t, h, "s", []int32{b}, a)
	want := gains(t, h, "fresh", []int32{b}, a)
	if got != want {
		t.Fatalf("gain after divergent rebuild %d, want %d", got, want)
	}
}

// TestHostAheadOfRequest replays a gains request from before the host's
// latest commit: the host must rewind (rebuild) to the shorter prefix.
func TestHostAheadOfRequest(t *testing.T) {
	h, slice := hostFixture(t)
	a, b := pickNodes(t, slice)

	commit(t, h, "s", nil, a)
	commit(t, h, "s", []int32{a}, b)
	got := gains(t, h, "s", []int32{a}, b)
	want := gains(t, h, "fresh", []int32{a}, b)
	if got != want {
		t.Fatalf("gain after rewind %d, want %d", got, want)
	}
}

// TestHostRestartRecovery restarts the host mid-session: the next
// request's prefix rebuilds the session and answers identically.
func TestHostRestartRecovery(t *testing.T) {
	h, slice := hostFixture(t)
	a, b := pickNodes(t, slice)

	commit(t, h, "s", nil, a)
	before := gains(t, h, "s", []int32{a}, b)
	h.Restart()
	if after := gains(t, h, "s", []int32{a}, b); after != before {
		t.Fatalf("gain after restart %d, want %d", after, before)
	}
}

// TestHostForgetDropsSession checks OpForget frees the session and a
// later request rebuilds it from the prefix.
func TestHostForgetDropsSession(t *testing.T) {
	h, slice := hostFixture(t)
	a, b := pickNodes(t, slice)

	commit(t, h, "s", nil, a)
	if _, err := h.Serve(&Request{Op: OpForget, SolveID: "s", Shard: 0, Count: 2}); err != nil {
		t.Fatal(err)
	}
	want := gains(t, h, "fresh", []int32{a}, b)
	if got := gains(t, h, "s", []int32{a}, b); got != want {
		t.Fatalf("gain after forget %d, want %d", got, want)
	}
}

// TestHostInitCounts checks OpInit reports the slice metadata and every
// candidate's round-0 pair count in ascending node order.
func TestHostInitCounts(t *testing.T) {
	h, slice := hostFixture(t)
	resp, err := h.Serve(&Request{Op: OpInit, SolveID: "s", Shard: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Samples != slice.Samples || resp.NumEnds != slice.NumEnds ||
		resp.ShardSamples != slice.ShardSamples || resp.BaselinePairs != slice.BaselinePairs {
		t.Fatalf("init metadata %+v disagrees with slice", resp)
	}
	wantNodes := slice.Candidates()
	if len(resp.Counts) != len(wantNodes) {
		t.Fatalf("%d counts, want %d", len(resp.Counts), len(wantNodes))
	}
	for i, nc := range resp.Counts {
		if nc.Node != wantNodes[i] || nc.Pairs != slice.PairCount(nc.Node) {
			t.Fatalf("count[%d] = %+v, want node %d pairs %d",
				i, nc, wantNodes[i], slice.PairCount(wantNodes[i]))
		}
	}
	if !sortedAsc(resp.Counts) {
		t.Fatal("init counts not ascending by node")
	}
}

func sortedAsc(counts []NodeCount) bool {
	for i := 1; i < len(counts); i++ {
		if counts[i-1].Node >= counts[i].Node {
			return false
		}
	}
	return true
}

// TestStaticProviderFullSet checks an unsharded set is served as shard
// 0 of 1 and nothing else.
func TestStaticProviderFullSet(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	full, err := sketch.Build(p, sketch.Options{Samples: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prov := StaticProvider(full)
	got, err := prov(0, 1)
	if err != nil || got != full {
		t.Fatalf("full set as 0/1: %v, %v", got, err)
	}
	if _, err := prov(0, 2); err == nil {
		t.Fatal("full set served as shard 0/2")
	}
	if _, err := prov(1, 1); err == nil {
		t.Fatal("full set served as shard 1/1")
	}
}

// TestHostErrors covers the request validation and provider error paths.
func TestHostErrors(t *testing.T) {
	h, _ := hostFixture(t)
	if _, err := h.Serve(nil); err == nil {
		t.Fatal("nil request accepted")
	}
	if _, err := h.Serve(&Request{Op: OpInit, Shard: 2, Count: 2}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := h.Serve(&Request{Op: OpInit, Shard: 0, Count: 0}); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := h.Serve(&Request{Op: "bogus", Shard: 0, Count: 2}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// The fixture's provider only holds shard 0/2.
	if _, err := h.Serve(&Request{Op: OpInit, Shard: 1, Count: 2}); err == nil {
		t.Fatal("missing slice served")
	}
	bad := NewHost(func(index, count int) (*sketch.Set, error) {
		return nil, errors.New("store offline")
	})
	if _, err := bad.Serve(&Request{Op: OpInit, Shard: 0, Count: 1}); err == nil {
		t.Fatal("provider failure not surfaced")
	}
	lying := NewHost(func(index, count int) (*sketch.Set, error) {
		return &sketch.Set{ShardIndex: 1, ShardCount: 3}, nil
	})
	if _, err := lying.Serve(&Request{Op: OpInit, Shard: 0, Count: 3}); err == nil {
		t.Fatal("mismatched slice coordinates accepted")
	}
	none := NewHost(nil)
	if _, err := none.Serve(&Request{Op: OpInit, Shard: 0, Count: 1}); err == nil {
		t.Fatal("nil provider host served a slice")
	}
}

// TestHostSessionsIndependent checks two solve ids never share covered
// state.
func TestHostSessionsIndependent(t *testing.T) {
	h, slice := hostFixture(t)
	a, b := pickNodes(t, slice)
	commit(t, h, "one", nil, a)
	want := gains(t, h, "fresh", nil, b)
	if got := gains(t, h, "two", nil, b); got != want {
		t.Fatalf("session two saw session one's commits: gain %d, want %d", got, want)
	}
	if !reflect.DeepEqual(want, gains(t, h, "two", nil, b)) {
		t.Fatal("repeat read diverged")
	}
}
