package shardsolve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcrb/internal/core"
	"lcrb/internal/resilience"
	"lcrb/internal/sketch"
)

// Default robustness knobs; see the Coordinator fields.
const (
	defaultHedgeDelay  = 25 * time.Millisecond
	defaultCallTimeout = 2 * time.Second
	defaultRetries     = 3
)

// Coordinator drives sharded scatter-gather solves over a Transport; see
// the package comment for the algorithm and its guarantees. The zero
// robustness knobs select the documented defaults, so a usable
// coordinator is just {Transport: t, Shards: n}. Safe for concurrent
// SolveContext calls — each solve carries its own session id and per-run
// state (the per-endpoint breakers are per solve too: a solve-scoped
// failure verdict, not a process-wide one, keeps concurrent solves from
// blaming each other's endpoints).
type Coordinator struct {
	// Transport reaches the endpoints. Endpoints 0..Shards−1 serve the
	// shard identities; any extras are spares dead identities requeue
	// onto.
	Transport Transport
	// Shards is the shard-identity count; Transport.Endpoints() must be
	// at least this.
	Shards int

	// HedgeDelay is how long a scatter leg waits before launching its
	// hedge attempt. 0 means 25ms; negative launches the hedge
	// immediately (a plain race).
	HedgeDelay time.Duration
	// CallTimeout bounds each retry attempt of a scatter leg (the
	// hedged pair together). 0 means 2s; negative disables the bound —
	// then only cancellation or a hedge win gets past a double stall.
	CallTimeout time.Duration
	// RetryAttempts is the per-leg retry budget. Values < 1 mean 3. A
	// leg that spends it is dead: requeued onto a spare or excluded.
	RetryAttempts int
	// Breaker tunes the per-endpoint circuit breakers (zero value means
	// the resilience defaults). A leg rejected by an open breaker is not
	// retried — the endpoint is declared dead immediately.
	Breaker resilience.BreakerOptions
	// HedgeStats, when non-nil, aggregates hedge outcomes across solves
	// — the serving layer shares one instance between this tier and its
	// solve ladder for /v1/stats.
	HedgeStats *resilience.HedgeStats
}

// solveSeq numbers auto-generated solve ids within the process.
var solveSeq atomic.Int64

// Solve is SolveContext with a background context.
func (c *Coordinator) Solve(spec Spec) (*Result, error) {
	return c.SolveContext(context.Background(), spec)
}

// SolveContext runs one sharded lazy-greedy solve. On cancellation the
// best-so-far prefix is returned with Partial set alongside the error,
// following the repo's partial-result contract. A solve that loses every
// shard returns an error — there is no surviving sample to answer from.
func (c *Coordinator) SolveContext(ctx context.Context, spec Spec) (*Result, error) {
	if c.Transport == nil {
		return nil, fmt.Errorf("shardsolve: solve: nil transport")
	}
	if c.Shards < 1 {
		return nil, fmt.Errorf("shardsolve: solve: shards = %d must be positive", c.Shards)
	}
	if c.Transport.Endpoints() < c.Shards {
		return nil, fmt.Errorf("shardsolve: solve: transport has %d endpoints for %d shards",
			c.Transport.Endpoints(), c.Shards)
	}
	if spec.Alpha == 0 {
		spec.Alpha = 0.9
	}
	if err := core.ValidateAlphaOpen(spec.Alpha); err != nil {
		return nil, fmt.Errorf("shardsolve: solve: %w", err)
	}
	if spec.CertEpsilon != 0 || spec.CertDelta != 0 {
		// Validate the certificate knobs up front so a bad spec fails
		// loudly instead of surfacing from the final CertifyBound call.
		delta := spec.CertDelta
		if delta == 0 {
			delta = sketch.DefaultDelta
		}
		if _, err := sketch.CertifyBound(spec.CertEpsilon, delta, 1, 0); err != nil {
			return nil, fmt.Errorf("shardsolve: solve: %w", err)
		}
	}
	id := spec.SolveID
	if id == "" {
		id = fmt.Sprintf("shardsolve-%d", solveSeq.Add(1))
	}

	s := &solveRun{c: c, spec: spec, id: id, count: c.Shards}
	s.breakers = make([]*resilience.Breaker, c.Transport.Endpoints())
	for i := range s.breakers {
		s.breakers[i] = resilience.NewBreaker(c.Breaker)
	}
	s.nextSpare = c.Shards
	for i := 0; i < c.Shards; i++ {
		s.members = append(s.members, &member{identity: i, endpoint: i, live: true})
	}
	s.liveCount = c.Shards
	defer s.forget(ctx)
	return s.run(ctx)
}

// member is one shard identity's routing state: which endpoint currently
// serves it and whether it still contributes to the estimate.
type member struct {
	identity int
	endpoint int
	live     bool
}

// solveRun is the per-solve state of a coordinator.
type solveRun struct {
	c     *Coordinator
	spec  Spec
	id    string
	count int

	breakers  []*resilience.Breaker
	nextSpare int

	members   []*member
	liveCount int
	lost      int // realizations gone with excluded shards

	// Init-phase facts.
	samples        int
	numEnds        int
	required       int
	baselineBy     []int // per identity
	realizationsBy []int // per identity

	// Loss-accounting ledger: commitGains[k][i] is commit k's local gain
	// on identity i (0 for identities already dead at commit time, which
	// stay dead — exclusion is permanent, so live-only sums are exact).
	commitGains [][]int

	// Lazy-greedy state, mirroring sketch.greedyCover.
	selected    []int32
	gainInts    []int
	baseline    int
	covered     int
	target      int
	epoch       int32
	evaluations int
}

// run executes init + the lazy-greedy loop.
func (s *solveRun) run(ctx context.Context) (*Result, error) {
	pq, err := s.init(ctx)
	if err != nil {
		return nil, err
	}

	maxProtectors := s.spec.MaxProtectors
	if maxProtectors <= 0 {
		maxProtectors = s.numEnds
	}

	for s.covered < s.target && len(s.selected) < maxProtectors && len(pq) > 0 {
		if cerr := ctx.Err(); cerr != nil {
			res := s.result()
			res.Partial = true
			return res, fmt.Errorf("shardsolve: solve: %w", cerr)
		}
		if top := &pq[0]; top.round != s.epoch {
			// Stale upper bound: recount the maximum against the live
			// membership's covered state — per-shard gains are
			// non-negative, so a stale gain (even one that still counts a
			// since-excluded shard) upper-bounds the current one and the
			// lazy argument carries over shard loss unchanged.
			g, rerr := s.recount(ctx, top.node())
			if rerr != nil {
				res := s.result()
				res.Partial = true
				return res, fmt.Errorf("shardsolve: solve: %w", rerr)
			}
			top.key = lazyKey(int32(g), top.node())
			top.round = s.epoch
			s.evaluations++
			pq.siftDown(0)
			continue
		}
		top := pq.popEntry()
		if top.gain() <= 0 {
			break
		}
		if cerr := s.commit(ctx, top.node()); cerr != nil {
			res := s.result()
			res.Partial = true
			return res, fmt.Errorf("shardsolve: solve: %w", cerr)
		}
		s.epoch++
	}
	return s.result(), nil
}

// init scatters OpInit, reconciles deaths, verifies the shards agree on
// the build shape, and builds the round-0 lazy queue.
func (s *solveRun) init(ctx context.Context) (lazyQueue, error) {
	build := func(m *member) *Request {
		return &Request{Op: OpInit, SolveID: s.id, Shard: m.identity, Count: s.count}
	}
	resps, err := s.gather(ctx, build)
	if err != nil {
		return nil, err
	}

	s.baselineBy = make([]int, s.count)
	s.realizationsBy = make([]int, s.count)
	first := true
	for i, m := range s.members {
		if !m.live {
			continue
		}
		r := resps[i]
		if first {
			s.samples, s.numEnds = r.Samples, r.NumEnds
			first = false
		}
		if r.Samples != s.samples || r.NumEnds != s.numEnds {
			return nil, fmt.Errorf("shardsolve: init: shard %d reports samples=%d ends=%d, shard pool has samples=%d ends=%d — mixed builds",
				m.identity, r.Samples, r.NumEnds, s.samples, s.numEnds)
		}
		if want := sketch.ShardRealizations(s.samples, m.identity, s.count); r.ShardSamples != want {
			return nil, fmt.Errorf("shardsolve: init: shard %d holds %d realizations, want %d of %d",
				m.identity, r.ShardSamples, want, s.samples)
		}
		s.baselineBy[m.identity] = r.BaselinePairs
		s.realizationsBy[m.identity] = r.ShardSamples
	}
	if s.samples <= 0 || s.numEnds <= 0 {
		return nil, fmt.Errorf("shardsolve: init: shards report samples=%d ends=%d", s.samples, s.numEnds)
	}
	// Identities excluded during init hold ShardRealizations realizations
	// by construction — the CRN partition makes a dead shard's
	// contribution computable without asking it.
	for _, m := range s.members {
		if !m.live {
			s.realizationsBy[m.identity] = sketch.ShardRealizations(s.samples, m.identity, s.count)
		}
	}
	s.required = requiredEnds(s.spec.Alpha, s.numEnds)
	s.recomputeTotals()

	// Round 0: merge per-shard candidate counts; a candidate's global
	// pair count is the sum of its per-shard counts because the slices
	// partition the pair pool. Sorted ascending like the single-store
	// queue build (order is cosmetic — keys are unique — but determinism
	// is free here).
	merged := map[int32]int{}
	for i, m := range s.members {
		if !m.live {
			continue
		}
		for _, nc := range resps[i].Counts {
			merged[nc.Node] += nc.Pairs
		}
	}
	nodes := make([]int32, 0, len(merged))
	for u := range merged {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
	pq := make(lazyQueue, 0, len(nodes))
	for _, u := range nodes {
		pq = append(pq, lazyEntry{key: lazyKey(int32(merged[u]), u), round: s.epoch})
		s.evaluations++
	}
	pq.initQueue()
	return pq, nil
}

// recount gathers one candidate's marginal gain from every live shard.
func (s *solveRun) recount(ctx context.Context, node int32) (int, error) {
	build := func(m *member) *Request {
		return &Request{Op: OpGains, SolveID: s.id, Shard: m.identity, Count: s.count,
			Committed: s.selected, Candidates: []int32{node}}
	}
	resps, err := s.gather(ctx, build)
	if err != nil {
		return 0, err
	}
	g := 0
	for i, m := range s.members {
		if !m.live {
			continue
		}
		if len(resps[i].Gains) != 1 {
			return 0, fmt.Errorf("shardsolve: recount: shard %d returned %d gains for 1 candidate",
				m.identity, len(resps[i].Gains))
		}
		g += resps[i].Gains[0]
	}
	return g, nil
}

// commit commits node on every live shard and books the gathered local
// gains into the ledger and the running totals.
func (s *solveRun) commit(ctx context.Context, node int32) error {
	build := func(m *member) *Request {
		return &Request{Op: OpCommit, SolveID: s.id, Shard: m.identity, Count: s.count,
			Committed: s.selected, Node: node}
	}
	resps, err := s.gather(ctx, build)
	if err != nil {
		return err
	}
	row := make([]int, s.count)
	for i, m := range s.members {
		if m.live {
			row[m.identity] = resps[i].Gain
		}
	}
	s.commitGains = append(s.commitGains, row)
	s.selected = append(s.selected, node)
	// If the membership shrank mid-commit, gather already rebuilt the
	// totals over the survivors (before this row was booked); the
	// incremental booking below sums live entries only, so it is exact
	// in both the clean and the lossy case.
	g := 0
	for _, lg := range row {
		g += lg
	}
	s.gainInts = append(s.gainInts, g)
	s.covered += g
	return nil
}

// gather scatters a request to every live member, requeues or excludes
// the legs that die, and returns responses aligned with s.members (nil at
// dead members). The returned responses are mutually consistent even
// under mid-gather loss: a gains or commit response depends only on the
// answering shard's own slice and the request's committed prefix, never
// on which other shards are alive.
func (s *solveRun) gather(ctx context.Context, build func(m *member) *Request) ([]*Response, error) {
	resps := make([]*Response, len(s.members))
	errs := make([]error, len(s.members))
	var wg sync.WaitGroup
	for i, m := range s.members {
		if !m.live {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			resps[i], errs[i] = s.callShard(ctx, m.endpoint, build(m))
		}(i, m)
	}
	wg.Wait()

	liveBefore := s.liveCount
	for i, m := range s.members {
		if !m.live || errs[i] == nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		resp, ok := s.requeue(ctx, m, build)
		if !ok {
			s.exclude(m)
			continue
		}
		resps[i] = resp
	}
	if s.liveCount == 0 {
		return nil, fmt.Errorf("shardsolve: all %d shards lost: %w", s.count, ErrEndpointDown)
	}
	if s.liveCount != liveBefore && s.realizationsBy != nil {
		// Post-init exclusions invalidate every running total; rebuild
		// them over the survivors now, so the caller always sees totals
		// consistent with the membership its responses came from. (During
		// init, realizationsBy is still nil and init recomputes itself.)
		s.recomputeTotals()
	}
	return resps, nil
}

// requeue tries to move a dead member onto spare endpoints, replaying the
// failed request against each until one serves it. The spare rebuilds the
// member's slice from its provider and reconciles to the request's
// committed prefix — the session-free protocol needs no handover from the
// corpse. Returns the spare's response and true on success; false leaves
// the member for exclusion.
func (s *solveRun) requeue(ctx context.Context, m *member, build func(m *member) *Request) (*Response, bool) {
	for s.nextSpare < s.c.Transport.Endpoints() {
		ep := s.nextSpare
		s.nextSpare++
		resp, err := s.callShard(ctx, ep, build(m))
		if err != nil {
			continue
		}
		m.endpoint = ep
		return resp, true
	}
	return nil, false
}

// exclude removes a dead member from the estimate: every queue entry
// goes stale (the epoch bump forces recounts against the survivors) and
// the running totals must be rebuilt via recomputeTotals.
func (s *solveRun) exclude(m *member) {
	m.live = false
	s.liveCount--
	s.epoch++
}

// recomputeTotals rebuilds the lost-realization count, baseline, covered,
// the per-commit gains and the α target over the live membership, from
// the per-shard ledger. The estimate after loss is exactly what a
// single-store solve over only the surviving realizations would have
// accumulated for this commit prefix.
func (s *solveRun) recomputeTotals() {
	s.lost = 0
	s.baseline = 0
	for _, m := range s.members {
		if m.live {
			s.baseline += s.baselineBy[m.identity]
		} else {
			s.lost += s.realizationsBy[m.identity]
		}
	}
	s.covered = 0
	s.gainInts = s.gainInts[:0]
	for _, row := range s.commitGains {
		g := 0
		for _, m := range s.members {
			if m.live {
				g += row[m.identity]
			}
		}
		s.gainInts = append(s.gainInts, g)
		s.covered += g
	}
	s.target = s.required*(s.samples-s.lost) - s.baseline
}

// callShard runs one scatter leg: Retry around the endpoint's Breaker
// around a Hedge of transport calls, with a per-attempt timeout that is
// reported as ErrCallTimeout (not a context error) so the retry layer
// treats a straggling endpoint as retryable rather than as a canceled
// solve.
func (s *solveRun) callShard(ctx context.Context, ep int, req *Request) (*Response, error) {
	attempts := s.c.RetryAttempts
	if attempts < 1 {
		attempts = defaultRetries
	}
	retry := resilience.Retry{
		Attempts:  attempts,
		BaseDelay: 5 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
		Seed:      uint64(ep) + 1,
		Retryable: func(err error) bool { return !errors.Is(err, resilience.ErrOpen) },
	}
	var resp *Response
	err := retry.DoContext(ctx, func(rctx context.Context) error {
		var aerr error
		resp, aerr = s.attempt(rctx, ep, req)
		return aerr
	})
	if err != nil {
		return nil, fmt.Errorf("shardsolve: endpoint %d: %w", ep, err)
	}
	return resp, nil
}

// attempt is one retry attempt: breaker-guarded, hedged, time-bounded.
func (s *solveRun) attempt(ctx context.Context, ep int, req *Request) (*Response, error) {
	timeout := s.c.CallTimeout
	if timeout == 0 {
		timeout = defaultCallTimeout
	}
	cctx, cancel := ctx, func() {}
	if timeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	delay := s.c.HedgeDelay
	if delay == 0 {
		delay = defaultHedgeDelay
	}
	if delay < 0 {
		delay = 0
	}
	var resp *Response
	err := s.breakers[ep].DoContext(cctx, func(bctx context.Context) error {
		hedge := resilience.Hedge{Delay: delay, Attempts: 2, Stats: s.c.HedgeStats}
		v, herr := hedge.DoContext(bctx, func(hctx context.Context, _ int) (any, error) {
			return s.c.Transport.Call(hctx, ep, req)
		})
		if herr != nil {
			return herr
		}
		resp = v.(*Response)
		return nil
	})
	if err != nil && cctx.Err() != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("shardsolve: endpoint %d: attempt exceeded %v: %w", ep, timeout, ErrCallTimeout)
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// forget drops the solve's sessions on the live shards, best-effort with
// a short bound — hygiene, not correctness: a host that misses it keeps a
// dormant session until its next restart.
func (s *solveRun) forget(ctx context.Context) {
	fctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	for _, m := range s.members {
		if !m.live {
			continue
		}
		_, _ = s.c.Transport.Call(fctx, m.endpoint, &Request{
			Op: OpForget, SolveID: s.id, Shard: m.identity, Count: s.count,
		})
	}
}

// result assembles the Result from the run's current state; every σ̂ is
// normalized by the effective sample count.
func (s *solveRun) result() *Result {
	nEff := s.samples - s.lost
	res := &Result{
		Samples:          s.samples,
		EffectiveSamples: nEff,
		Shards:           ShardsInfo{Total: s.count, Live: s.liveCount, LostRealizations: s.lost},
	}
	n := float64(nEff)
	res.BaselineEnds = float64(s.baseline) / n
	res.Protectors = append([]int32{}, s.selected...)
	for _, g := range s.gainInts {
		res.Gains = append(res.Gains, float64(g)/n)
	}
	res.ProtectedEnds = float64(s.baseline+s.covered) / n
	res.Achieved = s.covered >= s.target
	res.Evaluations = s.evaluations
	if s.lost > 0 {
		res.Degraded = DegradedShardLoss
	}
	if s.spec.CertEpsilon > 0 {
		delta := s.spec.CertDelta
		if delta == 0 {
			delta = sketch.DefaultDelta
		}
		xhat := float64(s.baseline+s.covered) / (n * float64(s.numEnds))
		if met, err := sketch.CertifyBound(s.spec.CertEpsilon, delta, nEff, xhat); err == nil {
			res.BoundChecked = true
			res.BoundMet = met
		}
	}
	return res
}

// requiredEnds replicates core.Problem.RequiredEnds from the end count
// alone — the coordinator never holds the Problem in HTTP deployments.
func requiredEnds(alpha float64, numEnds int) int {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 {
		return numEnds
	}
	need := int(alpha * float64(numEnds))
	if float64(need) < alpha*float64(numEnds) {
		need++
	}
	return need
}

// lazyEntry, lazyKey and lazyQueue replicate the single-store solver's
// queue discipline (sketch.coverQueue): (gain desc, node asc) packed into
// one max-ordered uint64 key, served by a 4-ary heap. Keys are unique —
// node ids break gain ties — so every max-heap discipline pops the same
// sequence; replicating the concrete one keeps even the internal array
// states aligned with the solver the bit-identity tests diff against.
type lazyEntry struct {
	key   uint64
	round int32
}

// lazyKey packs (gain desc, node asc): key(a) > key(b) ⇔ a precedes b.
func lazyKey(gain, node int32) uint64 {
	return uint64(uint32(gain))<<32 | uint64(^uint32(node))
}

func (e lazyEntry) gain() int32 { return int32(uint32(e.key >> 32)) }
func (e lazyEntry) node() int32 { return int32(^uint32(e.key)) }

type lazyQueue []lazyEntry

// initQueue establishes the heap invariant in O(n).
func (q lazyQueue) initQueue() {
	for i := (len(q) - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// popEntry removes and returns the maximum entry.
func (q *lazyQueue) popEntry() lazyEntry {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	if n > 1 {
		(*q).siftDown(0)
	}
	return top
}

// siftDown restores the invariant below i.
func (q lazyQueue) siftDown(i int) {
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		best, bestKey := first, q[first].key
		for c := first + 1; c < last; c++ {
			if k := q[c].key; k > bestKey {
				best, bestKey = c, k
			}
		}
		if bestKey <= e.key {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = e
}
