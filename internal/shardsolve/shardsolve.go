// Package shardsolve is the sharded scatter-gather tier of the RIS
// solver: a coordinator drives the exact lazy-greedy max-coverage loop of
// sketch.SolveGreedyRIS, but the RR-pair pool lives partitioned across N
// shard workers, each holding the slice of realizations congruent to its
// index (sketch.BuildShard). Per round the coordinator scatters the
// candidate at the top of its lazy queue, gathers per-shard marginal
// gains, commits the argmax on every shard, and books the summed local
// gains — so the covered bitsets stay sharded and only integers cross the
// wire.
//
// # Bit-identity
//
// With no faults, the sharded solve returns a GreedyResult identical —
// Protectors, Gains, Evaluations, σ̂ — to the single-store solver, for
// every shard count. The argument chains three facts. First, the CRN
// shard builds partition the single build's pairs exactly (the
// sketch.BuildShard contract), so a candidate's global marginal gain is
// the sum of its per-shard gains: the pair sets are disjoint and their
// union is the full pool. Second, the lazy-greedy loop's behavior depends
// only on the sequence of (gain, node) keys it observes, and those keys
// are unique (node ids break ties), so any max-heap discipline pops the
// same sequence — the coordinator replicates the solver's queue verbatim.
// Third, the stopping rule is integer-exact (covered pairs vs
// required·N − baseline), so no float drift can flip a comparison.
//
// # Robustness
//
// Every scatter leg runs through resilience.Retry around a per-endpoint
// resilience.Breaker around resilience.Hedge, so stragglers are hedged,
// repeated failures trip fast, and transient faults retry. An endpoint
// that exhausts its budget is dead: its shard identity is requeued onto a
// spare endpoint when the transport has one (the spare rebuilds the slice
// from its provider and replays the commit prefix carried by every
// request), and excluded otherwise. Exclusion is honest, not silent:
// realizations are i.i.d., so dropping a shard's slice leaves an unbiased
// estimate over the surviving N_eff = Samples − lost realizations. The
// coordinator recomputes covered pairs, the α target, σ̂ and the gain
// history over live shards only (it tracks every commit's per-shard
// gains), tags the result Degraded = "shard_loss" with a Shards census,
// and — when the caller asked for a certificate — re-runs the martingale
// bound at N_eff, flipping BoundMet false when the loss broke it.
//
// # Protocol
//
// Requests are session-free: every gains/commit request carries the full
// committed prefix, and a host reconciles its per-solve session to that
// prefix — applying the missing suffix, rebuilding from scratch on
// divergence or after a restart, and answering duplicate commits from its
// gain log. A shard process restart therefore loses nothing but time.
package shardsolve

import "lcrb/internal/core"

// Spec describes one sharded solve. The build options must describe a
// fixed-samples build (the adaptive stopping rule needs a global coverage
// probe no shard can run); the coordinator learns Samples and NumEnds
// from the shards' init responses and verifies they agree.
type Spec struct {
	// Alpha is the fraction of bridge ends to protect, in (0, 1).
	// Defaults to 0.9, matching sketch.SolveOptions.
	Alpha float64
	// MaxProtectors caps the seed-set size. 0 means |B|.
	MaxProtectors int

	// CertEpsilon, when positive, asks the coordinator to check the
	// PR-8 martingale certificate at the effective (post-loss) sample
	// count: Result.BoundChecked is set and Result.BoundMet reports
	// whether N_eff realizations still certify relative error ε at
	// failure probability CertDelta (default sketch.DefaultDelta).
	CertEpsilon float64
	// CertDelta is the certificate's failure probability, in (0, 1).
	CertDelta float64

	// SolveID names the coordinator's session on the shards. Empty means
	// a process-unique id; set it only to correlate logs across tiers.
	SolveID string
}

// ShardsInfo is the shard census of a solve: how many shard identities
// the solve opened with, how many still contributed to the final answer,
// and how many realizations the dead ones took with them.
type ShardsInfo struct {
	// Total is the shard count the solve opened with.
	Total int `json:"total"`
	// Live is how many shards contributed to the final estimate.
	Live int `json:"live"`
	// LostRealizations is the number of realizations excluded with dead
	// shards; the effective sample count is Samples − LostRealizations.
	LostRealizations int `json:"lostRealizations"`
}

// DegradedShardLoss is the Result.Degraded tag of a solve that lost at
// least one shard and answered from the survivors.
const DegradedShardLoss = "shard_loss"

// Result is a sharded solve's answer: the GreedyResult the single-store
// solver would shape, plus the shard census and honesty tags.
type Result struct {
	core.GreedyResult

	// Samples is the solve's global realization count; EffectiveSamples
	// is what remained after shard loss (equal when nothing was lost).
	// Every σ̂ in the embedded GreedyResult is normalized by
	// EffectiveSamples.
	Samples          int
	EffectiveSamples int

	// Shards is the shard census.
	Shards ShardsInfo
	// Degraded is empty for a full-accuracy answer, DegradedShardLoss
	// when shard loss shrank the sample pool behind the estimate.
	Degraded string
	// BoundChecked reports that the Spec asked for a certificate check;
	// BoundMet is its verdict at EffectiveSamples. A solve that starts
	// with the bound met and loses enough realizations to break it
	// returns BoundChecked true, BoundMet false.
	BoundChecked bool
	BoundMet     bool
}
