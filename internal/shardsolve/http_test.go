package shardsolve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lcrb/internal/sketch"
)

// httpShards stands up one httptest server per host, each serving the
// shard protocol, and returns their base URLs.
func httpShards(t *testing.T, hosts []*Host) []string {
	t.Helper()
	urls := make([]string, len(hosts))
	for i, h := range hosts {
		srv := httptest.NewServer(NewHTTPHandler(h))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestHTTPBitIdentity runs the full solve over real HTTP round trips and
// demands the same bit-identical result as the in-process transport.
func TestHTTPBitIdentity(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	full, err := sketch.Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sketch.SolveGreedyRIS(p, full, sketch.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	urls := httpShards(t, buildHosts(t, p, opts, 3, 0))
	c := fastCoordinator(NewHTTPTransport(urls, nil), 3)
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGreedy(t, got, want)
	if got.Degraded != "" {
		t.Fatalf("HTTP solve tagged %q", got.Degraded)
	}
}

// TestHTTPShardDeathDegrades closes one shard's server before the solve:
// the connection failures wrap ErrEndpointDown, the shard is excluded,
// and the result carries the honest loss tags.
func TestHTTPShardDeathDegrades(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	opts := sketch.Options{Samples: 48, Seed: 7}
	hosts := buildHosts(t, p, opts, 3, 0)
	urls := make([]string, 3)
	for i, h := range hosts {
		srv := httptest.NewServer(NewHTTPHandler(h))
		urls[i] = srv.URL
		if i == 1 {
			srv.Close() // shard 1 is dead before the solve starts
		} else {
			t.Cleanup(srv.Close)
		}
	}
	c := fastCoordinator(NewHTTPTransport(urls, nil), 3)
	c.RetryAttempts = 1 // a closed server won't come back; don't wait on it
	got, err := c.Solve(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != DegradedShardLoss {
		t.Fatalf("Degraded = %q, want %q", got.Degraded, DegradedShardLoss)
	}
	lost := sketch.ShardRealizations(48, 1, 3)
	if got.Shards.Total != 3 || got.Shards.Live != 2 || got.Shards.LostRealizations != lost {
		t.Fatalf("census %+v, want {3, 2, %d}", got.Shards, lost)
	}
}

// TestHTTPHandlerRejects covers the handler's method and payload checks.
func TestHTTPHandlerRejects(t *testing.T) {
	p := testProblem(t, 300, 40, 41)
	slice, err := sketch.BuildShard(p, sketch.Options{Samples: 16, Seed: 7}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(NewHost(StaticProvider(slice))))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + ShardPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET got %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+ShardPath, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body got %d, want 400", resp.StatusCode)
	}

	// A host failure (no slice for the coordinates) must surface as 500
	// so the client transport maps it to ErrEndpointDown.
	resp, err = http.Post(srv.URL+ShardPath, "application/json",
		strings.NewReader(`{"op":"init","solveId":"s","shard":3,"count":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("missing slice got %d, want 500", resp.StatusCode)
	}
}
