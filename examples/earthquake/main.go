// Earthquake scenario: broadcast-style panic containment.
//
// Models the Ghazni earthquake rumor from the paper's introduction: a false
// earthquake warning spreads as a broadcast (everyone who hears it tells
// everyone they know — the DOAM model) out of one neighbourhood of an
// Enron-profile communication network. The authorities must pick the
// minimum set of trusted contacts ("protectors") so the panic never leaves
// the neighbourhood, and the example compares SCBG against the Proximity
// and MaxDegree heuristics on both seed-set size and final damage.
//
//	go run ./examples/earthquake
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lcrb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := lcrb.GenerateEnron(0.08, 2012)
	if err != nil {
		return err
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(100)
	members := part.Members(comm)

	// The panic starts with 5% of the neighbourhood.
	k := len(members) / 20
	if k < 1 {
		k = 1
	}
	rumors := members[:k]
	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	fmt.Printf("network: %v\n", net.Graph)
	fmt.Printf("panic neighbourhood: %d people, %d initial spreaders, %d bridge ends\n",
		len(members), len(rumors), prob.NumEnds())
	if prob.NumEnds() == 0 {
		fmt.Println("the neighbourhood is already isolated; nothing to do")
		return nil
	}

	// SCBG: the least-cost seed set that keeps the panic inside.
	sol, err := lcrb.SolveSCBG(prob, lcrb.SCBGOptions{})
	if err != nil {
		return err
	}

	// The heuristics get the same budget, as in the paper's Figures 7-9.
	ctx := lcrb.SelectorContext{Graph: net.Graph, Rumors: rumors, BridgeEnds: prob.Ends}
	budget := len(sol.Protectors)

	rows := []struct {
		name  string
		seeds []int32
	}{
		{"SCBG", sol.Protectors},
		{"NoBlocking", nil},
	}
	for _, sel := range []lcrb.Selector{lcrb.Proximity{}, lcrb.MaxDegree{}} {
		seeds, err := lcrb.SelectHeuristic(sel, ctx, budget, 7)
		if err != nil {
			return err
		}
		rows = append(rows, struct {
			name  string
			seeds []int32
		}{sel.Name(), seeds})
	}

	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "strategy\tprotectors\tpanicked\tcalmed\tbridge ends lost\t")
	for _, row := range rows {
		res, err := lcrb.Simulate(lcrb.DOAM{}, net.Graph, rumors, row.seeds, 0, lcrb.SimOptions{})
		if err != nil {
			return err
		}
		lost := 0
		for _, e := range prob.Ends {
			if res.Status[e] == lcrb.Infected {
				lost++
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d/%d\t\n",
			row.name, len(row.seeds), res.Infected, res.Protected, lost, prob.NumEnds())
	}
	return tw.Flush()
}
