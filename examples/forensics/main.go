// Forensics example: tracing an outbreak and locating its source.
//
// Simulates an unchecked rumor with activation tracing enabled, then plays
// investigator: reconstructs the infection chain that reached a victim
// node, and recovers the hidden originator from the infected set alone
// using the Jordan-center estimator — the "locating rumor originators"
// problem the paper's conclusion poses as future work.
//
//	go run ./examples/forensics
package main

import (
	"fmt"
	"log"
	"strings"

	"lcrb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := lcrb.GenerateHep(0.08, 404)
	if err != nil {
		return err
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(70)
	source := part.Members(comm)[0]
	fmt.Printf("network: %v\nhidden rumor source: node %d (community %d)\n\n",
		net.Graph, source, comm)

	// Simulate a short unchecked outbreak with tracing.
	trace := lcrb.NewTrace()
	res, err := lcrb.Simulate(lcrb.DOAM{}, net.Graph, []int32{source}, nil, 0, lcrb.SimOptions{
		MaxHops:  4,
		Observer: trace.Observer(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("after 4 hops: %d infected, %d activation events recorded\n",
		res.Infected, len(trace.Events()))

	// Pick the last-infected node as the "victim" and reconstruct how the
	// rumor reached them.
	events := trace.Events()
	victim := events[len(events)-1].Node
	path := trace.PathTo(victim)
	steps := make([]string, len(path))
	for i, n := range path {
		steps[i] = fmt.Sprint(n)
	}
	fmt.Printf("\ninfection chain to victim %d:\n  %s\n", victim, strings.Join(steps, " -> "))

	// Now forget the trace and locate the source from the infected set.
	var infected []int32
	for v, st := range res.Status {
		if st == lcrb.Infected {
			infected = append(infected, int32(v))
		}
	}
	cands, err := lcrb.LocateSource(net.Graph, infected, lcrb.JordanCenter, 5)
	if err != nil {
		return err
	}
	fmt.Println("\ntop source candidates (jordan center):")
	for i, c := range cands {
		mark := ""
		if c.Node == source {
			mark = "   <== the true source"
		}
		fmt.Printf("  %d. node %d (eccentricity %.0f)%s\n", i+1, c.Node, c.Score, mark)
	}

	// Print the first hops of the timeline for flavour.
	fmt.Println("\nfirst activations:")
	shown := 0
	for _, e := range events {
		if e.Hop > 2 || shown > 12 {
			break
		}
		src := "seed"
		if e.Source >= 0 {
			src = fmt.Sprintf("told by %d", e.Source)
		}
		fmt.Printf("  hop %d: node %d (%s)\n", e.Hop, e.Node, src)
		shown++
	}
	return nil
}
