// Custom-model example: plugging a user-defined diffusion model into the
// library, the paper's "other influence diffusion models" future-work
// direction.
//
// Defines OPOAT — an Opportunistic One-Activate-Two model where every
// active node targets *two* random out-neighbours per step — as an
// implementation of the Model interface, then compares how the same SCBG
// protector set performs under DOAM, OPOAO, OPOAT and the bundled
// competitive IC and LT extensions.
//
//	go run ./examples/custommodel
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"lcrb"
	"lcrb/internal/graph"
	"lcrb/internal/rng"
)

// OPOAT is the custom model: like OPOAO, but each active node picks two
// activation targets per step (with replacement), so rumors spread roughly
// twice as fast while staying person-to-person.
type OPOAT struct{}

var _ lcrb.Model = OPOAT{}

// Name implements lcrb.Model.
func (OPOAT) Name() string { return "OPOAT" }

// Run implements lcrb.Model.
func (OPOAT) Run(g *graph.Graph, rumors, protectors []int32, src *rng.Source, opts lcrb.SimOptions) (*lcrb.SimResult, error) {
	if src == nil {
		return nil, errors.New("opoat: nil random source")
	}
	// Delegate both picks per step to two interleaved OPOAO-style rounds:
	// simplest correct implementation is a direct frontier loop.
	status := make([]lcrb.Status, g.NumNodes())
	for _, r := range rumors {
		status[r] = lcrb.Infected
	}
	for _, p := range protectors {
		status[p] = lcrb.Protected // P priority on overlap
	}
	var active []int32
	for v, st := range status {
		if st != lcrb.Inactive {
			active = append(active, int32(v))
		}
	}
	maxHops := opts.MaxHops
	if maxHops <= 0 {
		maxHops = 64
	}
	res := &lcrb.SimResult{Status: status}
	for hop := 0; hop < maxHops; hop++ {
		proposals := make(map[int32]lcrb.Status)
		for _, u := range active {
			deg := int(g.OutDegree(u))
			if deg == 0 {
				continue
			}
			for pick := 0; pick < 2; pick++ {
				v := g.Out(u)[src.Intn(deg)]
				if status[v] != lcrb.Inactive {
					continue
				}
				if cur, ok := proposals[v]; !ok || (cur == lcrb.Infected && status[u] == lcrb.Protected) {
					proposals[v] = status[u]
				}
			}
		}
		if len(proposals) == 0 {
			continue
		}
		// Map iteration order is randomized by the runtime; apply the
		// proposals in sorted node order so the same seed replays the
		// same cascade (the frontier order feeds next hop's RNG draws).
		nodes := make([]int32, 0, len(proposals))
		for v := range proposals {
			nodes = append(nodes, v)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, v := range nodes {
			status[v] = proposals[v]
			active = append(active, v)
		}
		res.Hops = hop + 1
	}
	for _, st := range status {
		switch st {
		case lcrb.Infected:
			res.Infected++
		case lcrb.Protected:
			res.Protected++
		}
	}
	return res, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := lcrb.GenerateHep(0.08, 31)
	if err != nil {
		return err
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(70)
	members := part.Members(comm)
	rumors := members[:3]

	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	if prob.NumEnds() == 0 {
		fmt.Println("no bridge ends for this draw; try another seed")
		return nil
	}
	sol, err := lcrb.SolveSCBG(prob, lcrb.SCBGOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("network: %v\n%d bridge ends, %d SCBG protectors\n\n",
		net.Graph, prob.NumEnds(), len(sol.Protectors))

	models := []lcrb.Model{
		lcrb.DOAM{},
		lcrb.OPOAO{},
		OPOAT{},
		lcrb.CompetitiveIC{P: 0.15},
		lcrb.CompetitiveLT{},
	}
	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "model\tinfected (no blocking)\tinfected (SCBG)\tends lost (SCBG)\t")
	for _, m := range models {
		open, err := meanInfected(m, net, rumors, nil, prob.Ends)
		if err != nil {
			return err
		}
		blocked, err := meanInfected(m, net, rumors, sol.Protectors, prob.Ends)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f/%d\t\n",
			m.Name(), open.infected, blocked.infected, blocked.endsLost, prob.NumEnds())
	}
	return tw.Flush()
}

// outcome aggregates a Monte-Carlo comparison run.
type outcome struct {
	infected float64
	endsLost float64
}

// meanInfected averages infections (and bridge ends lost) over 25 runs.
func meanInfected(m lcrb.Model, net *lcrb.Network, rumors, protectors, ends []int32) (outcome, error) {
	agg, err := lcrb.MonteCarlo{Model: m, Samples: 25, Seed: 5}.
		Run(net.Graph, rumors, protectors, lcrb.SimOptions{MaxHops: 31})
	if err != nil {
		return outcome{}, err
	}
	var lost float64
	for _, e := range ends {
		lost += agg.InfectedProb[e]
	}
	return outcome{infected: agg.MeanInfected, endsLost: lost}, nil
}
