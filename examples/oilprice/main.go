// Oil-price scenario: person-to-person rumor budgeting.
//
// Models the Twitter oil-price rumor from the paper's introduction: a false
// report spreads by one-to-one contact (the OPOAO model) out of a trader
// community. A fact-checking desk has limited staff, so it solves LCRB-P —
// protect an α fraction of the bridge ends with as few counter-messaging
// seeds as possible — with the submodular greedy algorithm, and the example
// shows how the required seed count grows with α.
//
//	go run ./examples/oilprice
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"lcrb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := lcrb.GenerateEnron(0.06, 173)
	if err != nil {
		return err
	}
	part := lcrb.DetectCommunities(net.Graph, 1)
	comm := part.ClosestBySize(60)
	members := part.Members(comm)
	rumors := members[:3]

	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	fmt.Printf("network: %v\n", net.Graph)
	fmt.Printf("trader community %d: %d members, %d rumor sources, %d bridge ends\n",
		comm, len(members), len(rumors), prob.NumEnds())
	if prob.NumEnds() == 0 {
		fmt.Println("no bridge ends; the rumor cannot leave the community")
		return nil
	}

	tw := tabwriter.NewWriter(os.Stdout, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "alpha\tseeds\tσ̂(S_P)\ttarget\tachieved\tmean infected\t")
	for _, alpha := range []float64{0.5, 0.7, 0.9} {
		sol, err := lcrb.SolveGreedy(prob, lcrb.GreedyOptions{
			Alpha:   alpha,
			Samples: 20,
			Seed:    9,
		})
		if err != nil {
			return err
		}
		// Measure realized damage with an independent Monte-Carlo run.
		agg, err := lcrb.MonteCarlo{
			Model:   lcrb.OPOAO{},
			Samples: 40,
			Seed:    10,
		}.Run(net.Graph, rumors, sol.Protectors, lcrb.SimOptions{MaxHops: 31})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.1f\t%d\t%.1f\t%d\t%v\t%.1f\t\n",
			alpha, len(sol.Protectors), sol.ProtectedEnds,
			prob.RequiredEnds(alpha), sol.Achieved, agg.MeanInfected)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Reference: unchecked spread.
	open, err := lcrb.MonteCarlo{Model: lcrb.OPOAO{}, Samples: 40, Seed: 10}.
		Run(net.Graph, rumors, nil, lcrb.SimOptions{MaxHops: 31})
	if err != nil {
		return err
	}
	fmt.Printf("mean infected with no blocking: %.1f\n", open.MeanInfected)
	return nil
}
