// Quickstart: the smallest end-to-end rumor-blocking run.
//
// Generates a Hep-profile collaboration network, detects its communities
// with Louvain, plants rumors in a mid-sized community, solves LCRB-D with
// the SCBG algorithm and verifies the blocking under the DOAM broadcast
// model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lcrb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 10%-scale Hep network: ~1.5k nodes, average degree ~7.7.
	net, err := lcrb.GenerateHep(0.1, 42)
	if err != nil {
		return err
	}
	fmt.Println("network:", net.Graph)

	// Detect communities the way the paper does (Louvain).
	part := lcrb.DetectCommunities(net.Graph, 1)
	fmt.Printf("communities: %d (modularity %.3f)\n",
		part.Count(), lcrb.Modularity(net.Graph, part))

	// Plant three rumor originators in a community of roughly 80 members.
	comm := part.ClosestBySize(80)
	members := part.Members(comm)
	rumors := members[:3]
	fmt.Printf("rumor community %d: %d members, rumors at %v\n", comm, len(members), rumors)

	// Stage 1+2: find the bridge ends and solve LCRB-D with SCBG.
	prob, err := lcrb.NewProblem(net.Graph, part.Assign(), comm, rumors)
	if err != nil {
		return err
	}
	fmt.Printf("bridge ends: %d\n", prob.NumEnds())

	sol, err := lcrb.SolveSCBG(prob, lcrb.SCBGOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("SCBG selected %d protectors: %v\n", len(sol.Protectors), sol.Protectors)

	// Verify under the DOAM model: with the protectors in place, how far
	// does the rumor get?
	blocked, err := lcrb.Simulate(lcrb.DOAM{}, net.Graph, rumors, sol.Protectors, 0, lcrb.SimOptions{})
	if err != nil {
		return err
	}
	open, err := lcrb.Simulate(lcrb.DOAM{}, net.Graph, rumors, nil, 0, lcrb.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("infected without blocking: %d\n", open.Infected)
	fmt.Printf("infected with SCBG:        %d (plus %d protected)\n",
		blocked.Infected, blocked.Protected)
	return nil
}
